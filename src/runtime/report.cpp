#include "runtime/report.h"

namespace vcop::runtime {

std::string Ms(Picoseconds t) { return StrFormat("%.2f", ToMilliseconds(t)); }

std::string Speedup(Picoseconds baseline, Picoseconds t) {
  if (t == 0) return "inf";
  return StrFormat("%.1fx", static_cast<double>(baseline) /
                                static_cast<double>(t));
}

std::string Describe(const os::ExecutionReport& r) {
  return StrFormat(
      "total %s ms (hw %s, dp %s, imu %s, invoke %s) — %llu faults, "
      "%llu evictions, %llu writebacks",
      Ms(r.total).c_str(), Ms(r.t_hw).c_str(), Ms(r.t_dp).c_str(),
      Ms(r.t_imu).c_str(), Ms(r.t_invoke).c_str(),
      static_cast<unsigned long long>(r.vim.faults),
      static_cast<unsigned long long>(r.vim.evictions),
      static_cast<unsigned long long>(r.vim.writebacks));
}

std::string DescribeDetailed(const os::ExecutionReport& r) {
  std::string out;
  out += StrFormat("  total execution     : %s ms\n", Ms(r.total).c_str());
  out += StrFormat("    hardware (CP+IMU) : %s ms\n", Ms(r.t_hw).c_str());
  out += StrFormat("    OS: DP management : %s ms\n", Ms(r.t_dp).c_str());
  out += StrFormat("    OS: IMU management: %s ms\n", Ms(r.t_imu).c_str());
  out += StrFormat("    invocation setup  : %s ms\n", Ms(r.t_invoke).c_str());
  out += StrFormat(
      "  page faults %llu (+%llu TLB refills), evictions %llu, "
      "page loads %llu, writebacks %llu\n",
      static_cast<unsigned long long>(r.vim.faults),
      static_cast<unsigned long long>(r.vim.tlb_refills),
      static_cast<unsigned long long>(r.vim.evictions),
      static_cast<unsigned long long>(r.vim.loads),
      static_cast<unsigned long long>(r.vim.writebacks));
  out += StrFormat(
      "  bytes: %llu loaded into DP-RAM, %llu written back\n",
      static_cast<unsigned long long>(r.vim.bytes_loaded),
      static_cast<unsigned long long>(r.vim.bytes_written_back));
  if (r.vim.fault_service_us.count() > 0) {
    out += StrFormat(
        "  fault service: %llu services, %.1f/%.1f/%.1f us "
        "min/mean/max\n",
        static_cast<unsigned long long>(r.vim.fault_service_us.count()),
        r.vim.fault_service_us.min(), r.vim.fault_service_us.mean(),
        r.vim.fault_service_us.max());
  }
  if (r.vim.t_dp_overlapped > 0) {
    out += StrFormat(
        "  overlapped transfers: %s ms off the critical path "
        "(%llu cleaned pages, %s ms fault wait)\n",
        Ms(r.vim.t_dp_overlapped).c_str(),
        static_cast<unsigned long long>(r.vim.cleaned_pages),
        Ms(r.vim.t_dp_wait).c_str());
  }
  out += StrFormat(
      "  coprocessor: %llu cycles, %llu accesses (%llu reads / %llu "
      "writes), TLB %llu/%llu hits\n",
      static_cast<unsigned long long>(r.cp_cycles),
      static_cast<unsigned long long>(r.imu.accesses),
      static_cast<unsigned long long>(r.imu.reads),
      static_cast<unsigned long long>(r.imu.writes),
      static_cast<unsigned long long>(r.tlb.hits),
      static_cast<unsigned long long>(r.tlb.lookups));
  return out;
}

std::string Describe(const ManualRunResult& r) {
  return StrFormat("total %s ms (hw %s, copies %s)", Ms(r.total).c_str(),
                   Ms(r.t_hw).c_str(), Ms(r.t_copy).c_str());
}

}  // namespace vcop::runtime
