#include "runtime/config.h"

namespace vcop::runtime {

os::KernelConfig Epxa1Config() {
  os::KernelConfig config;
  config.platform_name = "EPXA1";
  config.dp_ram_bytes = 16 * 1024;
  config.page_bytes = 2 * 1024;
  config.tlb_entries = 8;
  config.imu_access_latency = 4;
  config.imu_pipelined = false;
  config.pld_capacity_les = 4160;
  return config;
}

os::KernelConfig Epxa4Config() {
  os::KernelConfig config = Epxa1Config();
  config.platform_name = "EPXA4";
  config.dp_ram_bytes = 64 * 1024;
  config.page_bytes = 2 * 1024;
  config.tlb_entries = 16;
  config.pld_capacity_les = 16640;
  return config;
}

os::KernelConfig Epxa10Config() {
  os::KernelConfig config = Epxa1Config();
  config.platform_name = "EPXA10";
  config.dp_ram_bytes = 256 * 1024;
  config.page_bytes = 4 * 1024;
  config.tlb_entries = 16;
  config.pld_capacity_les = 38400;
  return config;
}

}  // namespace vcop::runtime
