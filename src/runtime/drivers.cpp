#include "runtime/drivers.h"

#include <tuple>

#include "cp/adpcm_cp.h"
#include "cp/adpcm_enc_cp.h"
#include "cp/conv_cp.h"
#include "cp/gather_cp.h"
#include "cp/idea_cp.h"
#include "cp/registry.h"
#include "cp/vecadd_cp.h"

namespace vcop::runtime {
namespace {

/// Loads `bitstream` unless a design with the same name already
/// occupies the PLD (reconfiguring on every call would be wasteful and
/// is not what an application does).
Status EnsureLoaded(FpgaSystem& sys, const hw::Bitstream& bitstream) {
  if (sys.kernel().fabric().loaded()) {
    if (sys.kernel().fabric().current_bitstream().name == bitstream.name) {
      return Status::Ok();
    }
    VCOP_RETURN_IF_ERROR(sys.Unload());
  }
  return sys.Load(bitstream);
}

}  // namespace

Result<VimRun<i16>> RunAdpcmVim(FpgaSystem& sys, std::span<const u8> input) {
  if (input.empty()) return InvalidArgumentError("empty ADPCM input");
  VCOP_RETURN_IF_ERROR(EnsureLoaded(sys, cp::AdpcmDecodeBitstream()));

  Result<HostBuffer<u8>> in =
      sys.Allocate<u8>(static_cast<u32>(input.size()));
  if (!in.ok()) return in.status();
  in.value().Fill(input);
  Result<HostBuffer<i16>> out =
      sys.Allocate<i16>(static_cast<u32>(input.size() * 2));
  if (!out.ok()) return out.status();

  VCOP_RETURN_IF_ERROR(sys.Remap(cp::AdpcmDecodeCoprocessor::kObjIn,
                                 in.value(), os::Direction::kIn));
  VCOP_RETURN_IF_ERROR(sys.Remap(cp::AdpcmDecodeCoprocessor::kObjOut,
                                 out.value(), os::Direction::kOut));

  // FPGA_EXECUTE(length, valprev, index) — fresh predictor state.
  Result<os::ExecutionReport> report =
      sys.Execute({static_cast<u32>(input.size()), 0u, 0u});
  if (!report.ok()) return report.status();
  return VimRun<i16>{out.value().ToVector(), report.value()};
}

Result<VimRun<u8>> RunAdpcmEncodeVim(FpgaSystem& sys,
                                     std::span<const i16> pcm) {
  if (pcm.empty() || pcm.size() % 2 != 0) {
    return InvalidArgumentError(
        "ADPCM encodes a nonzero, even number of samples");
  }
  VCOP_RETURN_IF_ERROR(EnsureLoaded(sys, cp::AdpcmEncodeBitstream()));

  Result<HostBuffer<i16>> in =
      sys.Allocate<i16>(static_cast<u32>(pcm.size()));
  if (!in.ok()) return in.status();
  in.value().Fill(pcm);
  Result<HostBuffer<u8>> out =
      sys.Allocate<u8>(static_cast<u32>(pcm.size() / 2));
  if (!out.ok()) return out.status();

  VCOP_RETURN_IF_ERROR(sys.Remap(cp::AdpcmEncodeCoprocessor::kObjIn,
                                 in.value(), os::Direction::kIn));
  VCOP_RETURN_IF_ERROR(sys.Remap(cp::AdpcmEncodeCoprocessor::kObjOut,
                                 out.value(), os::Direction::kOut));

  Result<os::ExecutionReport> report =
      sys.Execute({static_cast<u32>(pcm.size()), 0u, 0u});
  if (!report.ok()) return report.status();
  return VimRun<u8>{out.value().ToVector(), report.value()};
}

namespace {

/// Shared IDEA runner: mode 0 = ECB, 1 = CBC encrypt, 2 = CBC decrypt.
Result<VimRun<u8>> RunIdeaMode(FpgaSystem& sys,
                               const apps::IdeaSubkeys& subkeys,
                               u32 mode, u32 iv_lo, u32 iv_hi,
                               std::span<const u8> input) {
  if (input.empty() || input.size() % apps::kIdeaBlockBytes != 0) {
    return InvalidArgumentError(
        "IDEA input must be a nonzero multiple of 8 bytes");
  }
  VCOP_RETURN_IF_ERROR(EnsureLoaded(sys, cp::IdeaBitstream()));

  Result<HostBuffer<u8>> in =
      sys.Allocate<u8>(static_cast<u32>(input.size()));
  if (!in.ok()) return in.status();
  in.value().Fill(input);
  Result<HostBuffer<u8>> out =
      sys.Allocate<u8>(static_cast<u32>(input.size()));
  if (!out.ok()) return out.status();
  Result<HostBuffer<u16>> key =
      sys.Allocate<u16>(static_cast<u32>(subkeys.size()));
  if (!key.ok()) return key.status();
  key.value().Fill(std::span<const u16>(subkeys.data(), subkeys.size()));

  // The in/out streams are addressed as 32-bit elements by the core;
  // map them with 4-byte element width over the same raw bytes.
  for (const auto& [id, buffer, dir] :
       {std::tuple{cp::IdeaCoprocessor::kObjIn, &in.value(),
                   os::Direction::kIn},
        std::tuple{cp::IdeaCoprocessor::kObjOut, &out.value(),
                   os::Direction::kOut}}) {
    if (sys.kernel().vim().objects().Find(id) != nullptr) {
      VCOP_RETURN_IF_ERROR(sys.kernel().FpgaUnmapObject(id));
    }
    VCOP_RETURN_IF_ERROR(sys.kernel().FpgaMapObject(
        id, buffer->addr(), buffer->size_bytes(), /*elem_width=*/4, dir));
  }
  VCOP_RETURN_IF_ERROR(
      sys.Remap(cp::IdeaCoprocessor::kObjKey, key.value(),
                os::Direction::kIn));

  const u32 blocks =
      static_cast<u32>(input.size() / apps::kIdeaBlockBytes);
  Result<os::ExecutionReport> report =
      sys.Execute({blocks, mode, iv_lo, iv_hi});
  if (!report.ok()) return report.status();
  return VimRun<u8>{out.value().ToVector(), report.value()};
}

}  // namespace

Result<VimRun<u8>> RunIdeaVim(FpgaSystem& sys,
                              const apps::IdeaSubkeys& subkeys,
                              std::span<const u8> input) {
  return RunIdeaMode(sys, subkeys, cp::IdeaCoprocessor::kModeEcb, 0, 0,
                     input);
}

Result<VimRun<u8>> RunIdeaCbcVim(FpgaSystem& sys,
                                 const apps::IdeaSubkeys& subkeys,
                                 const apps::IdeaIv& iv, bool encrypt,
                                 std::span<const u8> input) {
  u32 iv_lo = 0, iv_hi = 0;
  for (u32 b = 0; b < 4; ++b) {
    iv_lo |= static_cast<u32>(iv[b]) << (8 * b);
    iv_hi |= static_cast<u32>(iv[4 + b]) << (8 * b);
  }
  return RunIdeaMode(sys, subkeys,
                     encrypt ? cp::IdeaCoprocessor::kModeCbcEncrypt
                             : cp::IdeaCoprocessor::kModeCbcDecrypt,
                     iv_lo, iv_hi, input);
}

Result<VimRun<u32>> RunVecAddVim(FpgaSystem& sys, std::span<const u32> a,
                                 std::span<const u32> b) {
  if (a.size() != b.size() || a.empty()) {
    return InvalidArgumentError("vecadd needs two equal nonzero vectors");
  }
  VCOP_RETURN_IF_ERROR(EnsureLoaded(sys, cp::VecAddBitstream()));

  const u32 n = static_cast<u32>(a.size());
  Result<HostBuffer<u32>> ba = sys.Allocate<u32>(n);
  if (!ba.ok()) return ba.status();
  ba.value().Fill(a);
  Result<HostBuffer<u32>> bb = sys.Allocate<u32>(n);
  if (!bb.ok()) return bb.status();
  bb.value().Fill(b);
  Result<HostBuffer<u32>> bc = sys.Allocate<u32>(n);
  if (!bc.ok()) return bc.status();

  VCOP_RETURN_IF_ERROR(sys.Remap(cp::VecAddCoprocessor::kObjA, ba.value(),
                                 os::Direction::kIn));
  VCOP_RETURN_IF_ERROR(sys.Remap(cp::VecAddCoprocessor::kObjB, bb.value(),
                                 os::Direction::kIn));
  VCOP_RETURN_IF_ERROR(sys.Remap(cp::VecAddCoprocessor::kObjC, bc.value(),
                                 os::Direction::kOut));

  Result<os::ExecutionReport> report = sys.Execute({n});
  if (!report.ok()) return report.status();
  return VimRun<u32>{bc.value().ToVector(), report.value()};
}

Result<VimRun<u32>> RunGatherVim(FpgaSystem& sys, std::span<const u32> in,
                                 std::span<const u32> perm) {
  if (in.empty() || perm.empty()) {
    return InvalidArgumentError("gather needs nonempty in and perm");
  }
  VCOP_RETURN_IF_ERROR(EnsureLoaded(sys, cp::GatherBitstream()));

  Result<HostBuffer<u32>> bin =
      sys.Allocate<u32>(static_cast<u32>(in.size()));
  if (!bin.ok()) return bin.status();
  bin.value().Fill(in);
  Result<HostBuffer<u32>> bperm =
      sys.Allocate<u32>(static_cast<u32>(perm.size()));
  if (!bperm.ok()) return bperm.status();
  bperm.value().Fill(perm);
  Result<HostBuffer<u32>> bout =
      sys.Allocate<u32>(static_cast<u32>(perm.size()));
  if (!bout.ok()) return bout.status();

  VCOP_RETURN_IF_ERROR(sys.Remap(cp::GatherCoprocessor::kObjIn, bin.value(),
                                 os::Direction::kIn));
  VCOP_RETURN_IF_ERROR(sys.Remap(cp::GatherCoprocessor::kObjOut,
                                 bout.value(), os::Direction::kOut));
  VCOP_RETURN_IF_ERROR(sys.Remap(cp::GatherCoprocessor::kObjPerm,
                                 bperm.value(), os::Direction::kIn));

  Result<os::ExecutionReport> report =
      sys.Execute({static_cast<u32>(perm.size())});
  if (!report.ok()) return report.status();
  return VimRun<u32>{bout.value().ToVector(), report.value()};
}

Result<VimRun<u8>> RunConv3x3Vim(FpgaSystem& sys,
                                 std::span<const u8> image, u32 width,
                                 u32 height,
                                 const apps::Conv3x3Kernel& kernel,
                                 u32 shift) {
  if (width < 3 || height < 3 ||
      image.size() != static_cast<usize>(width) * height) {
    return InvalidArgumentError("bad image geometry");
  }
  VCOP_RETURN_IF_ERROR(EnsureLoaded(sys, cp::Conv3x3Bitstream()));

  Result<HostBuffer<u8>> src =
      sys.Allocate<u8>(static_cast<u32>(image.size()));
  if (!src.ok()) return src.status();
  src.value().Fill(image);
  Result<HostBuffer<u8>> dst =
      sys.Allocate<u8>(static_cast<u32>(image.size()));
  if (!dst.ok()) return dst.status();
  Result<HostBuffer<u32>> coeffs = sys.Allocate<u32>(9);
  if (!coeffs.ok()) return coeffs.status();
  {
    auto view = coeffs.value().view();
    for (usize i = 0; i < 9; ++i) view[i] = static_cast<u32>(kernel[i]);
  }

  VCOP_RETURN_IF_ERROR(sys.Remap(cp::Conv3x3Coprocessor::kObjSrc,
                                 src.value(), os::Direction::kIn));
  VCOP_RETURN_IF_ERROR(sys.Remap(cp::Conv3x3Coprocessor::kObjDst,
                                 dst.value(), os::Direction::kOut));
  VCOP_RETURN_IF_ERROR(sys.Remap(cp::Conv3x3Coprocessor::kObjKernel,
                                 coeffs.value(), os::Direction::kIn));

  Result<os::ExecutionReport> report =
      sys.Execute({width, height, shift});
  if (!report.ok()) return report.status();
  return VimRun<u8>{dst.value().ToVector(), report.value()};
}

Result<ManualIdeaRun> RunIdeaManual(const os::CostModel& costs,
                                    u32 dp_ram_bytes,
                                    const apps::IdeaSubkeys& subkeys,
                                    std::span<const u8> input) {
  if (input.empty() || input.size() % apps::kIdeaBlockBytes != 0) {
    return InvalidArgumentError(
        "IDEA input must be a nonzero multiple of 8 bytes");
  }
  std::vector<u8> key_bytes(subkeys.size() * 2);
  for (usize i = 0; i < subkeys.size(); ++i) {
    key_bytes[2 * i] = static_cast<u8>(subkeys[i]);
    key_bytes[2 * i + 1] = static_cast<u8>(subkeys[i] >> 8);
  }
  std::vector<u8> output(input.size());

  ManualObject in_obj;
  in_obj.id = cp::IdeaCoprocessor::kObjIn;
  in_obj.elem_width = 4;
  in_obj.size_bytes = static_cast<u32>(input.size());
  in_obj.in = input;

  ManualObject out_obj;
  out_obj.id = cp::IdeaCoprocessor::kObjOut;
  out_obj.elem_width = 4;
  out_obj.size_bytes = static_cast<u32>(output.size());
  out_obj.out = output;

  ManualObject key_obj;
  key_obj.id = cp::IdeaCoprocessor::kObjKey;
  key_obj.elem_width = 2;
  key_obj.size_bytes = static_cast<u32>(key_bytes.size());
  // A hand-built coprocessor keeps its key schedule in configuration
  // registers, leaving the whole dual-port RAM for data — which is how
  // the paper's normal coprocessor handles an 8 KB dataset (in + out
  // fill the 16 KB exactly).
  key_obj.in_registers = true;
  key_obj.in = key_bytes;

  const ManualObject objects[] = {in_obj, out_obj, key_obj};
  const u32 blocks =
      static_cast<u32>(input.size() / apps::kIdeaBlockBytes);
  const u32 params[] = {blocks};

  ManualRunner runner(costs, dp_ram_bytes);
  Result<ManualRunResult> result =
      runner.Run(cp::IdeaBitstream(), objects, params);
  if (!result.ok()) return result.status();
  return ManualIdeaRun{std::move(output), result.value()};
}

}  // namespace vcop::runtime
