#include "runtime/manual_runtime.h"

#include "base/bitops.h"
#include "base/table.h"
#include "mem/ahb.h"
#include "mem/transfer.h"

namespace vcop::runtime {

DirectPort::DirectPort(sim::Simulator& sim, mem::DualPortRam& dp_ram)
    : sim_(sim), dp_ram_(dp_ram) {}

void DirectPort::SetObject(hw::ObjectId object, u32 base_offset,
                           u32 elem_width) {
  VCOP_CHECK_MSG(object < hw::kMaxObjects, "object id out of range");
  VCOP_CHECK_MSG(elem_width == 1 || elem_width == 2 || elem_width == 4,
                 "element width must be 1, 2 or 4");
  VCOP_CHECK_MSG(base_offset % elem_width == 0,
                 "manual layout must align objects to their element size");
  Mapping m;
  m.valid = true;
  m.base = base_offset;
  m.width = elem_width;
  map_[object] = m;
}

void DirectPort::SetRegisterObject(hw::ObjectId object, u32 base_offset,
                                   u32 elem_width) {
  SetObject(object, base_offset, elem_width);
  map_[object].registers = true;
}

void DirectPort::WriteRegisterFile(u32 offset, std::span<const u8> data) {
  VCOP_CHECK_MSG(offset + data.size() <= reg_file_.size(),
                 "register-file write out of range");
  std::copy(data.begin(), data.end(), reg_file_.begin() + offset);
}

bool DirectPort::CanIssue() const { return started_ && !outstanding_; }

void DirectPort::Issue(const hw::CpAccess& access) {
  VCOP_CHECK_MSG(CanIssue(), "Issue on a busy direct port");
  const Mapping& m = map_[access.object];
  VCOP_CHECK_MSG(m.valid, StrFormat("direct port: object %u has no fixed "
                                    "base (platform wiring bug)",
                                    access.object));
  const u32 paddr = m.base + access.index * m.width;
  if (m.registers) {
    VCOP_CHECK_MSG(paddr + m.width <= reg_file_.size(),
                   "register-file access out of range");
    if (access.write) {
      for (u32 b = 0; b < m.width; ++b) {
        reg_file_[paddr + b] = static_cast<u8>(access.wdata >> (8 * b));
      }
      rdata_ = 0;
    } else {
      rdata_ = 0;
      for (u32 b = 0; b < m.width; ++b) {
        rdata_ |= static_cast<u32>(reg_file_[paddr + b]) << (8 * b);
      }
    }
  } else if (access.write) {
    dp_ram_.WriteWord(mem::DualPortRam::Port::kCoprocessor, paddr, m.width,
                      access.wdata);
    rdata_ = 0;
  } else {
    rdata_ = dp_ram_.ReadWord(mem::DualPortRam::Port::kCoprocessor, paddr,
                              m.width);
  }
  outstanding_ = true;
  // Single-cycle memory: data valid at the core's next rising edge.
  VCOP_CHECK_MSG(cp_domain_ != nullptr, "direct port clock not bound");
  const Frequency f = cp_domain_->frequency();
  ready_at_ = f.EdgeTime(f.CyclesAt(sim_.now()) + 1);
  sim::ClockDomain* cp = cp_domain_;
  sim_.ScheduleAt(ready_at_, [cp] { cp->Kick(); });
}

bool DirectPort::ResponseReady() const {
  return outstanding_ && sim_.now() >= ready_at_;
}

u32 DirectPort::ConsumeResponse() {
  VCOP_CHECK_MSG(ResponseReady(), "ConsumeResponse before data valid");
  outstanding_ = false;
  return rdata_;
}

void DirectPort::SignalFinish() {
  VCOP_CHECK_MSG(started_, "CP_FIN while not started");
  started_ = false;
  finished_ = true;
}

ManualRunner::ManualRunner(const os::CostModel& costs, u32 dp_ram_bytes)
    : costs_(costs), dp_ram_bytes_(dp_ram_bytes) {
  VCOP_CHECK_MSG(dp_ram_bytes >= 16, "interface memory unrealistically small");
}

Result<ManualRunResult> ManualRunner::Run(
    const hw::Bitstream& bitstream, std::span<const ManualObject> objects,
    std::span<const u32> params) {
  // --- the platform-specific layout arithmetic the paper's Figure 3
  // complains about: pack everything at fixed offsets. Scalar params
  // and register objects go into the core register file; datasets go
  // into the dual-port RAM. ---
  const u32 param_bytes = static_cast<u32>(params.size() * 4);
  u32 dp_cursor = 0;
  u32 reg_cursor = param_bytes;
  std::vector<u32> base(objects.size());
  for (usize i = 0; i < objects.size(); ++i) {
    const ManualObject& object = objects[i];
    if (object.size_bytes == 0 ||
        object.size_bytes % object.elem_width != 0) {
      return InvalidArgumentError(
          StrFormat("object %u: bad size/width", object.id));
    }
    u32& cursor = object.in_registers ? reg_cursor : dp_cursor;
    cursor = static_cast<u32>(AlignUp(cursor, object.elem_width));
    base[i] = cursor;
    cursor += object.size_bytes;
  }
  if (dp_cursor > dp_ram_bytes_) {
    return ResourceExhaustedError(StrFormat(
        "dataset exceeds available memory: layout needs %u bytes, the "
        "dual-port RAM has %u",
        dp_cursor, dp_ram_bytes_));
  }
  if (reg_cursor > DirectPort::kRegisterFileBytes) {
    return ResourceExhaustedError(StrFormat(
        "register objects need %u bytes; the core register file has %u",
        reg_cursor, DirectPort::kRegisterFileBytes));
  }

  // --- private platform: simulator, DP-RAM, core, direct port ---
  sim::Simulator sim;
  mem::DualPortRam dp_ram(dp_ram_bytes_);
  if (!bitstream.create) {
    return InvalidArgumentError("bitstream has no core factory");
  }
  std::unique_ptr<hw::Coprocessor> core = bitstream.create();
  sim::ClockDomain& cp_domain =
      sim.AddClockDomain("cp", bitstream.cp_clock);
  DirectPort port(sim, dp_ram);
  port.BindCpDomain(cp_domain);
  port.SetRegisterObject(hw::kParamObject, 0, 4);
  for (usize i = 0; i < objects.size(); ++i) {
    if (objects[i].in_registers) {
      port.SetRegisterObject(objects[i].id, base[i], objects[i].elem_width);
    } else {
      port.SetObject(objects[i].id, base[i], objects[i].elem_width);
    }
  }
  core->BindPort(port);
  cp_domain.Attach(*core);

  // --- user-code staging (single direct copies; no OS, no bounce) ---
  mem::TransferEngine pricing(mem::AhbModel(costs_.ahb, costs_.cpu_clock),
                              costs_.cpu_clock, mem::CopyMode::kSingleCopy,
                              costs_.sdram_cycles_per_word);
  Picoseconds t_copy = 0;
  for (usize i = 0; i < params.size(); ++i) {
    u8 word[4];
    for (u32 b = 0; b < 4; ++b) word[b] = static_cast<u8>(params[i] >> (8 * b));
    port.WriteRegisterFile(static_cast<u32>(4 * i), word);
  }
  t_copy += pricing.PriceTransfer(param_bytes);
  for (usize i = 0; i < objects.size(); ++i) {
    if (objects[i].in.empty()) continue;
    if (objects[i].in.size() != objects[i].size_bytes) {
      return InvalidArgumentError(
          StrFormat("object %u: staged data size mismatch", objects[i].id));
    }
    if (objects[i].in_registers) {
      port.WriteRegisterFile(base[i], objects[i].in);
    } else {
      dp_ram.Write(mem::DualPortRam::Port::kProcessor, base[i],
                   objects[i].in);
    }
    t_copy += pricing.PriceTransfer(objects[i].size_bytes);
  }

  // --- run the core ---
  const Picoseconds t_start = sim.now();
  port.Start();
  core->Start(static_cast<u32>(params.size()));
  cp_domain.Kick();
  const bool converged = sim.RunUntil([&port] { return port.finished(); });
  if (!converged) {
    return UnavailableError("coprocessor did not complete (FSM deadlock?)");
  }
  const Picoseconds t_hw = sim.now() - t_start;

  // --- copy results back ---
  for (usize i = 0; i < objects.size(); ++i) {
    if (objects[i].out.empty()) continue;
    if (objects[i].out.size() != objects[i].size_bytes) {
      return InvalidArgumentError(
          StrFormat("object %u: output buffer size mismatch",
                    objects[i].id));
    }
    dp_ram.Read(mem::DualPortRam::Port::kProcessor, base[i],
                objects[i].out);
    t_copy += pricing.PriceTransfer(objects[i].size_bytes);
  }

  ManualRunResult result;
  result.t_hw = t_hw;
  result.t_copy = t_copy;
  // Minimal invocation overhead: a couple of register writes and a
  // completion poll — no syscalls, no interrupts.
  result.total = t_hw + t_copy + costs_.Cycles(400);
  result.cp_cycles = core->cycles_run();
  return result;
}

}  // namespace vcop::runtime
