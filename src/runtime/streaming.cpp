#include "runtime/streaming.h"

#include "cp/adpcm_cp.h"
#include "cp/registry.h"

namespace vcop::runtime {

Result<AdpcmStreamDecoder> AdpcmStreamDecoder::Create(FpgaSystem& sys,
                                                      u32 chunk_bytes) {
  if (chunk_bytes == 0) {
    return InvalidArgumentError("chunk size must be nonzero");
  }
  if (sys.kernel().fabric().loaded()) {
    if (sys.kernel().fabric().current_bitstream().name != "adpcmdecode") {
      VCOP_RETURN_IF_ERROR(sys.Unload());
      VCOP_RETURN_IF_ERROR(sys.Load(cp::AdpcmDecodeBitstream()));
    }
  } else {
    VCOP_RETURN_IF_ERROR(sys.Load(cp::AdpcmDecodeBitstream()));
  }
  Result<HostBuffer<u8>> in = sys.Allocate<u8>(chunk_bytes);
  if (!in.ok()) return in.status();
  Result<HostBuffer<i16>> out = sys.Allocate<i16>(chunk_bytes * 2);
  if (!out.ok()) return out.status();
  return AdpcmStreamDecoder(sys, chunk_bytes, in.value(), out.value());
}

Result<std::vector<i16>> AdpcmStreamDecoder::DecodeChunk(
    std::span<const u8> chunk) {
  VCOP_CHECK_MSG(!chunk.empty() && chunk.size() <= chunk_bytes_,
                 "bad chunk size");
  const u32 bytes = static_cast<u32>(chunk.size());
  auto in_view = in_buffer_.view();
  std::copy(chunk.begin(), chunk.end(), in_view.begin());

  // Remap to the *used* prefix so the kernel's bounds checks see the
  // true extent of this chunk.
  if (sys_->kernel().vim().objects().Find(
          cp::AdpcmDecodeCoprocessor::kObjIn) != nullptr) {
    VCOP_RETURN_IF_ERROR(
        sys_->Unmap(cp::AdpcmDecodeCoprocessor::kObjIn));
    VCOP_RETURN_IF_ERROR(
        sys_->Unmap(cp::AdpcmDecodeCoprocessor::kObjOut));
  }
  VCOP_RETURN_IF_ERROR(sys_->kernel().FpgaMapObject(
      cp::AdpcmDecodeCoprocessor::kObjIn, in_buffer_.addr(), bytes, 1,
      os::Direction::kIn));
  VCOP_RETURN_IF_ERROR(sys_->kernel().FpgaMapObject(
      cp::AdpcmDecodeCoprocessor::kObjOut, out_buffer_.addr(), bytes * 4,
      2, os::Direction::kOut));

  // Predictor state rides in the scalar parameters, exactly as the
  // mid-stream restart test does (§3.1 parameter passing).
  Result<os::ExecutionReport> report = sys_->Execute(
      {bytes, static_cast<u32>(static_cast<u16>(predictor_.valprev)),
       static_cast<u32>(predictor_.index)});
  if (!report.ok()) return report.status();

  // Advance the host-side predictor through the same data so the next
  // chunk's parameters are right. (The coprocessor has no way to hand
  // its final state back except through memory; tracking it host-side
  // costs one pass and keeps the object map minimal.)
  std::vector<i16> decoded(bytes * 2);
  apps::AdpcmDecode(chunk, decoded, predictor_);

  // The coprocessor's output is authoritative; assert they agree.
  const auto out_view = out_buffer_.view();
  for (u32 i = 0; i < bytes * 2; ++i) {
    VCOP_CHECK_MSG(out_view[i] == decoded[i],
                   "coprocessor and predictor-tracking disagree");
  }

  ++stats_.chunks;
  stats_.samples += bytes * 2;
  stats_.total_time += report.value().total;
  stats_.faults += report.value().vim.faults;
  return decoded;
}

Result<std::vector<i16>> AdpcmStreamDecoder::Feed(
    std::span<const u8> data) {
  pending_.insert(pending_.end(), data.begin(), data.end());
  std::vector<i16> out;
  usize consumed = 0;
  while (pending_.size() - consumed >= chunk_bytes_) {
    Result<std::vector<i16>> chunk = DecodeChunk(
        std::span<const u8>(pending_).subspan(consumed, chunk_bytes_));
    if (!chunk.ok()) return chunk.status();
    out.insert(out.end(), chunk.value().begin(), chunk.value().end());
    consumed += chunk_bytes_;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<long>(consumed));
  return out;
}

Result<std::vector<i16>> AdpcmStreamDecoder::Finish() {
  if (pending_.empty()) return std::vector<i16>{};
  Result<std::vector<i16>> out = DecodeChunk(pending_);
  if (out.ok()) pending_.clear();
  return out;
}

}  // namespace vcop::runtime
