// High-level drivers for the two benchmark applications: the exact
// Load / Map / Execute sequences of §3.1/§4, shared by the examples,
// the integration tests and every bench binary.
//
// Each driver runs one coprocessor invocation end-to-end: allocate
// simulated user buffers, map them, execute, and return both the
// functional result and the timing report. The corresponding software
// baselines live in apps/sw_model.h; the manual (no-VIM) IDEA baseline
// is RunIdeaManual below.
#pragma once

#include <vector>

#include "apps/conv2d.h"
#include "apps/idea.h"
#include "base/status.h"
#include "os/kernel.h"
#include "runtime/fpga_api.h"
#include "runtime/manual_runtime.h"

namespace vcop::runtime {

/// Output of a VIM-based run: the decoded/encrypted data plus timing.
template <typename T>
struct VimRun {
  std::vector<T> output;
  os::ExecutionReport report;
};

/// Decodes `input` on the ADPCM coprocessor through the VIM.
/// Loads the adpcmdecode bit-stream if it is not the current design.
Result<VimRun<i16>> RunAdpcmVim(FpgaSystem& sys, std::span<const u8> input);

/// Encodes `pcm` (even sample count) on the ADPCM encoder coprocessor.
Result<VimRun<u8>> RunAdpcmEncodeVim(FpgaSystem& sys,
                                     std::span<const i16> pcm);

/// Encrypts `input` (multiple of 8 bytes) on the IDEA coprocessor
/// through the VIM under `subkeys` (ECB).
Result<VimRun<u8>> RunIdeaVim(FpgaSystem& sys,
                              const apps::IdeaSubkeys& subkeys,
                              std::span<const u8> input);

/// CBC on the IDEA coprocessor: the chaining register lives in the
/// core; the IV rides in the scalar parameters. Pass the encryption
/// schedule with `encrypt`=true, the inverted schedule with false.
Result<VimRun<u8>> RunIdeaCbcVim(FpgaSystem& sys,
                                 const apps::IdeaSubkeys& subkeys,
                                 const apps::IdeaIv& iv, bool encrypt,
                                 std::span<const u8> input);

/// Adds `a` and `b` element-wise on the vecadd coprocessor.
Result<VimRun<u32>> RunVecAddVim(FpgaSystem& sys, std::span<const u32> a,
                                 std::span<const u32> b);

/// Computes out[i] = in[perm[i]] on the gather coprocessor. Every
/// perm[i] must be < in.size(); perm.size() elements are produced.
Result<VimRun<u32>> RunGatherVim(FpgaSystem& sys, std::span<const u32> in,
                                 std::span<const u32> perm);

/// Convolves a width x height u8 image with a 3x3 kernel on the
/// convolution coprocessor (border copied through).
Result<VimRun<u8>> RunConv3x3Vim(FpgaSystem& sys,
                                 std::span<const u8> image, u32 width,
                                 u32 height,
                                 const apps::Conv3x3Kernel& kernel,
                                 u32 shift);

/// The "normal coprocessor" IDEA baseline (§4.1 / Figure 9): user-
/// managed staging at fixed DP-RAM offsets, whole dataset at once.
/// Fails with RESOURCE_EXHAUSTED when input+output+key exceed the
/// interface memory.
struct ManualIdeaRun {
  std::vector<u8> output;
  ManualRunResult result;
};
Result<ManualIdeaRun> RunIdeaManual(const os::CostModel& costs,
                                    u32 dp_ram_bytes,
                                    const apps::IdeaSubkeys& subkeys,
                                    std::span<const u8> input);

}  // namespace vcop::runtime
