// Streaming execution helper: process unbounded data with bounded
// simulated user memory.
//
// The VIM removes the *interface-memory* chunking burden (§2.2), but an
// application decoding a long stream still works chunk-wise at its own
// level — sources arrive incrementally and user buffers are finite.
// AdpcmStreamDecoder packages that pattern: a pair of reusable chunk
// buffers, FPGA_MAP_OBJECT once per buffer flip, and the decoder's
// predictor state carried across FPGA_EXECUTE calls through the scalar
// parameters (§3.1) — so the chunked result is bit-exact with a
// hypothetical one-shot decode.
#pragma once

#include <span>
#include <vector>

#include "apps/adpcm.h"
#include "base/status.h"
#include "os/kernel.h"
#include "runtime/fpga_api.h"

namespace vcop::runtime {

struct StreamingStats {
  u64 chunks = 0;
  u64 samples = 0;
  Picoseconds total_time = 0;  // sum of FPGA_EXECUTE wall times
  u64 faults = 0;
};

class AdpcmStreamDecoder {
 public:
  /// `chunk_bytes`: ADPCM bytes per FPGA_EXECUTE (the user-buffer
  /// granularity, not the interface granularity). Loads the decoder
  /// bit-stream and allocates the two chunk buffers.
  static Result<AdpcmStreamDecoder> Create(FpgaSystem& sys,
                                           u32 chunk_bytes);

  /// Feeds `data` (any size); returns the decoded samples appended by
  /// this call. Data smaller than a chunk is buffered internally.
  Result<std::vector<i16>> Feed(std::span<const u8> data);

  /// Decodes whatever remains buffered (possibly a partial chunk).
  Result<std::vector<i16>> Finish();

  const StreamingStats& stats() const { return stats_; }

  /// Predictor state after everything decoded so far.
  const apps::AdpcmState& predictor() const { return predictor_; }

 private:
  AdpcmStreamDecoder(FpgaSystem& sys, u32 chunk_bytes,
                     HostBuffer<u8> in_buffer,
                     HostBuffer<i16> out_buffer)
      : sys_(&sys),
        chunk_bytes_(chunk_bytes),
        in_buffer_(in_buffer),
        out_buffer_(out_buffer) {}

  /// Runs one chunk (`bytes` <= chunk_bytes_) through the coprocessor.
  Result<std::vector<i16>> DecodeChunk(std::span<const u8> chunk);

  FpgaSystem* sys_;
  u32 chunk_bytes_;
  HostBuffer<u8> in_buffer_;
  HostBuffer<i16> out_buffer_;
  std::vector<u8> pending_;
  apps::AdpcmState predictor_{};
  StreamingStats stats_;
};

}  // namespace vcop::runtime
