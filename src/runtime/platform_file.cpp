#include "runtime/platform_file.h"

#include <cctype>
#include <optional>

#include "base/table.h"
#include "mem/page.h"
#include "runtime/config.h"

namespace vcop::runtime {
namespace {

std::string Trim(std::string_view s) {
  usize begin = 0;
  usize end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::string Lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::optional<u64> ParseU64(const std::string& value) {
  if (value.empty()) return std::nullopt;
  u64 out = 0;
  for (const char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    out = out * 10 + static_cast<u64>(c - '0');
  }
  return out;
}

std::optional<bool> ParseBool(const std::string& value) {
  const std::string v = Lower(value);
  if (v == "true" || v == "yes" || v == "1" || v == "on") return true;
  if (v == "false" || v == "no" || v == "0" || v == "off") return false;
  return std::nullopt;
}

Status LineError(usize line, const std::string& message) {
  return InvalidArgumentError(
      StrFormat("platform file line %zu: %s", line, message.c_str()));
}

}  // namespace

Result<os::KernelConfig> ParsePlatformFile(std::string_view text) {
  os::KernelConfig config = Epxa1Config();

  usize line_number = 0;
  usize cursor = 0;
  while (cursor <= text.size()) {
    const usize end = text.find('\n', cursor);
    std::string_view raw =
        text.substr(cursor, end == std::string_view::npos
                                ? std::string_view::npos
                                : end - cursor);
    cursor = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;

    // Strip comments.
    const usize comment = raw.find_first_of(";#");
    if (comment != std::string_view::npos) raw = raw.substr(0, comment);
    const std::string line = Trim(raw);
    if (line.empty()) continue;

    const usize eq = line.find('=');
    if (eq == std::string::npos) {
      return LineError(line_number, "expected 'key = value'");
    }
    const std::string key = Lower(Trim(std::string_view(line).substr(0, eq)));
    const std::string value = Trim(std::string_view(line).substr(eq + 1));
    if (value.empty()) return LineError(line_number, "empty value");

    auto number = [&](u64 lo, u64 hi) -> Result<u64> {
      const std::optional<u64> v = ParseU64(value);
      if (!v.has_value() || *v < lo || *v > hi) {
        return LineError(line_number,
                         StrFormat("'%s' must be an integer in [%llu, %llu]",
                                   key.c_str(),
                                   static_cast<unsigned long long>(lo),
                                   static_cast<unsigned long long>(hi)));
      }
      return *v;
    };
    auto boolean = [&]() -> Result<bool> {
      const std::optional<bool> v = ParseBool(value);
      if (!v.has_value()) {
        return LineError(
            line_number,
            StrFormat("'%s' must be a boolean (true/false, yes/no, on/off, "
                      "1/0), got '%s'",
                      key.c_str(), value.c_str()));
      }
      return *v;
    };

    if (key == "name") {
      config.platform_name = value;
    } else if (key == "dp_ram_kb") {
      Result<u64> v = number(1, 1 << 16);
      if (!v.ok()) return v.status();
      config.dp_ram_bytes = static_cast<u32>(v.value() * 1024);
    } else if (key == "page_kb") {
      Result<u64> v = number(1, 64);
      if (!v.ok()) return v.status();
      if (!IsPowerOfTwo(v.value())) {
        return LineError(line_number, "page_kb must be a power of two");
      }
      config.page_bytes = static_cast<u32>(v.value() * 1024);
    } else if (key == "page_size") {
      // Byte-granular successor of page_kb (which stays accepted for
      // old files): the frame granule may go below 1 KB.
      Result<u64> v = number(512, 65536);
      if (!v.ok()) return v.status();
      if (!IsPowerOfTwo(v.value())) {
        return LineError(line_number, "page_size must be a power of two");
      }
      config.page_bytes = static_cast<u32>(v.value());
    } else if (key == "tlb_entries") {
      Result<u64> v = number(1, 1024);
      if (!v.ok()) return v.status();
      config.tlb_entries = static_cast<u32>(v.value());
    } else if (key == "l1_tlb_entries") {
      Result<u64> v = number(0, 1024);
      if (!v.ok()) return v.status();
      config.l1_tlb_entries = static_cast<u32>(v.value());
    } else if (key == "l2_tlb_entries") {
      Result<u64> v = number(0, 1024);
      if (!v.ok()) return v.status();
      config.l2_tlb_entries = static_cast<u32>(v.value());
    } else if (key == "cpu_mhz") {
      Result<u64> v = number(1, 10'000);
      if (!v.ok()) return v.status();
      config.costs.cpu_clock = Frequency::MHz(v.value());
    } else if (key == "imu_latency") {
      Result<u64> v = number(2, 64);
      if (!v.ok()) return v.status();
      config.imu_access_latency = static_cast<u32>(v.value());
    } else if (key == "pipelined") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.imu_pipelined = v.value();
    } else if (key == "posted_writes") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.imu_posted_writes = v.value();
    } else if (key == "bounds_check") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.imu_bounds_check = v.value();
    } else if (key == "pld_les") {
      Result<u64> v = number(100, 1 << 24);
      if (!v.ok()) return v.status();
      config.pld_capacity_les = static_cast<u32>(v.value());
    } else if (key == "policy") {
      const std::string v = Lower(value);
      if (v == "fifo") {
        config.vim.policy = os::PolicyKind::kFifo;
      } else if (v == "lru") {
        config.vim.policy = os::PolicyKind::kLru;
      } else if (v == "random") {
        config.vim.policy = os::PolicyKind::kRandom;
      } else {
        return LineError(line_number, "policy must be fifo|lru|random");
      }
    } else if (key == "copy_mode") {
      const std::string v = Lower(value);
      if (v == "double") {
        config.vim.copy_mode = mem::CopyMode::kDoubleCopy;
      } else if (v == "single") {
        config.vim.copy_mode = mem::CopyMode::kSingleCopy;
      } else if (v == "dma") {
        config.vim.copy_mode = mem::CopyMode::kDma;
      } else {
        return LineError(line_number,
                         "copy_mode must be double|single|dma");
      }
    } else if (key == "prefetch") {
      const std::string v = Lower(value);
      if (v == "none") {
        config.vim.prefetch = os::PrefetchKind::kNone;
      } else if (v == "sequential") {
        config.vim.prefetch = os::PrefetchKind::kSequential;
      } else if (v == "stride") {
        config.vim.prefetch = os::PrefetchKind::kStride;
      } else if (v == "adaptive") {
        config.vim.prefetch = os::PrefetchKind::kAdaptive;
      } else {
        return LineError(line_number,
                         "prefetch must be none|sequential|stride|adaptive");
      }
    } else if (key == "prefetch_depth") {
      Result<u64> v = number(1, 16);
      if (!v.ok()) return v.status();
      config.vim.prefetch_depth = static_cast<u32>(v.value());
    } else if (key == "overlap") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.vim.overlap_prefetch = v.value();
    } else if (key == "victim_tlb_entries") {
      Result<u64> v = number(0, 1024);
      if (!v.ok()) return v.status();
      config.vim.victim_tlb_entries = static_cast<u32>(v.value());
    } else if (key == "coalesce_writeback") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.vim.coalesce_writeback = v.value();
    } else if (key == "iommu") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.vim.iommu = v.value();
    } else if (key == "iotlb_entries") {
      Result<u64> v = number(1, 1024);
      if (!v.ok()) return v.status();
      if (!IsPowerOfTwo(v.value())) {
        return LineError(line_number,
                         "iotlb_entries must be a power of two");
      }
      config.vim.iotlb_entries = static_cast<u32>(v.value());
    } else if (key == "fastforward") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.sim_tuning.fastforward = v.value();
    } else if (key == "service_ring") {
      Result<u64> v = number(2, 32768);
      if (!v.ok()) return v.status();
      if (!IsPowerOfTwo(v.value())) {
        return LineError(line_number,
                         "service_ring must be a power of two");
      }
      config.service.ring_entries = static_cast<u32>(v.value());
    } else if (key == "service_rate") {
      Result<u64> v = number(0, 1'000'000'000);
      if (!v.ok()) return v.status();
      config.service.admit_rate = v.value();
    } else if (key == "service_burst") {
      Result<u64> v = number(1, 1 << 20);
      if (!v.ok()) return v.status();
      config.service.admit_burst = static_cast<u32>(v.value());
    } else if (key == "config_slots") {
      Result<u64> v = number(1, 64);
      if (!v.ok()) return v.status();
      config.config_slots = static_cast<u32>(v.value());
    } else if (key == "design_affinity") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.design_affinity = v.value();
    } else if (key == "lazy_writeback") {
      Result<bool> v = boolean();
      if (!v.ok()) return v.status();
      config.vim.lazy_writeback = v.value();
    } else if (key.rfind("page_size_obj", 0) == 0) {
      const std::optional<u64> id = ParseU64(key.substr(13));
      if (!id.has_value() || *id >= hw::kMaxObjects) {
        return LineError(line_number,
                         StrFormat("'%s': object id must be in [0, %u]",
                                   key.c_str(), hw::kMaxObjects - 1));
      }
      if (*id == hw::kParamObject) {
        return LineError(
            line_number,
            StrFormat("'%s': object %u is reserved for parameter passing",
                      key.c_str(), hw::kParamObject));
      }
      Result<u64> v =
          number(mem::kMinObjectPageBytes, mem::kMaxObjectPageBytes);
      if (!v.ok()) return v.status();
      if (!IsPowerOfTwo(v.value())) {
        return LineError(
            line_number,
            StrFormat("'%s' must be a power of two", key.c_str()));
      }
      config.object_page_bytes[*id] = static_cast<u32>(v.value());
    } else {
      return LineError(line_number, "unknown key '" + key + "'");
    }
  }

  if (config.dp_ram_bytes % config.page_bytes != 0) {
    return InvalidArgumentError(
        "dp_ram_kb must be a whole number of pages");
  }
  return config;
}

std::string WritePlatformFile(const os::KernelConfig& config) {
  std::string out;
  out += StrFormat("name = %s\n", config.platform_name.c_str());
  out += StrFormat("dp_ram_kb = %u\n", config.dp_ram_bytes / 1024);
  out += StrFormat("page_size = %u\n", config.page_bytes);
  for (u32 id = 0; id < hw::kMaxObjects; ++id) {
    if (config.object_page_bytes[id] != 0) {
      out += StrFormat("page_size_obj%u = %u\n", id,
                       config.object_page_bytes[id]);
    }
  }
  out += StrFormat("tlb_entries = %u\n", config.tlb_entries);
  out += StrFormat("l1_tlb_entries = %u\n", config.l1_tlb_entries);
  out += StrFormat("l2_tlb_entries = %u\n", config.l2_tlb_entries);
  out += StrFormat("cpu_mhz = %llu\n",
                   static_cast<unsigned long long>(
                       config.costs.cpu_clock.hertz() / 1'000'000));
  out += StrFormat("imu_latency = %u\n", config.imu_access_latency);
  out += StrFormat("pipelined = %s\n",
                   config.imu_pipelined ? "true" : "false");
  out += StrFormat("posted_writes = %s\n",
                   config.imu_posted_writes ? "true" : "false");
  out += StrFormat("bounds_check = %s\n",
                   config.imu_bounds_check ? "true" : "false");
  out += StrFormat("pld_les = %u\n", config.pld_capacity_les);
  out += StrFormat("policy = %s\n",
                   std::string(ToString(config.vim.policy)).c_str());
  const char* copy = config.vim.copy_mode == mem::CopyMode::kDoubleCopy
                         ? "double"
                     : config.vim.copy_mode == mem::CopyMode::kSingleCopy
                         ? "single"
                         : "dma";
  out += StrFormat("copy_mode = %s\n", copy);
  out += StrFormat("prefetch = %s\n",
                   std::string(ToString(config.vim.prefetch)).c_str());
  out += StrFormat("prefetch_depth = %u\n", config.vim.prefetch_depth);
  out += StrFormat("overlap = %s\n",
                   config.vim.overlap_prefetch ? "true" : "false");
  out += StrFormat("victim_tlb_entries = %u\n",
                   config.vim.victim_tlb_entries);
  out += StrFormat("coalesce_writeback = %s\n",
                   config.vim.coalesce_writeback ? "true" : "false");
  out += StrFormat("iommu = %s\n", config.vim.iommu ? "true" : "false");
  out += StrFormat("iotlb_entries = %u\n", config.vim.iotlb_entries);
  out += StrFormat("fastforward = %s\n",
                   config.sim_tuning.fastforward ? "true" : "false");
  out += StrFormat("service_ring = %u\n", config.service.ring_entries);
  out += StrFormat("service_rate = %llu\n",
                   static_cast<unsigned long long>(config.service.admit_rate));
  out += StrFormat("service_burst = %u\n", config.service.admit_burst);
  out += StrFormat("config_slots = %u\n", config.config_slots);
  out += StrFormat("design_affinity = %s\n",
                   config.design_affinity ? "true" : "false");
  out += StrFormat("lazy_writeback = %s\n",
                   config.vim.lazy_writeback ? "true" : "false");
  return out;
}

}  // namespace vcop::runtime
