// Platform presets for the Excalibur family.
//
// §4 argues portability: "Using the module on the system with different
// size of the dual-port memory (e.g., the Altera devices EPXA4 and
// EPXA10) would require only recompiling the module. The user
// application would immediately benefit without need to recompile."
// These presets are that recompile: identical application and
// coprocessor code runs on any of them (bench/abl_platforms).
//
// EPXA4/EPXA10 dual-port sizes are approximations from the family
// datasheet scaling (the paper gives exact numbers only for EPXA1).
#pragma once

#include "os/kernel.h"

namespace vcop::runtime {

/// The paper's evaluation platform: ARM @133 MHz, 16 KB dual-port RAM
/// in eight 2 KB pages, 8-entry TLB, 4-cycle IMU translation.
os::KernelConfig Epxa1Config();

/// Mid-size family member: 64 KB dual-port RAM (32 pages), larger PLD.
os::KernelConfig Epxa4Config();

/// Largest family member: 256 KB dual-port RAM (128 pages).
os::KernelConfig Epxa10Config();

}  // namespace vcop::runtime
