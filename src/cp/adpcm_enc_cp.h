// ADPCM-encode coprocessor — the natural companion of the paper's
// adpcmdecode kernel, completing a full hardware audio codec path
// (record: encode on the PLD; play: decode on the PLD).
//
// Inverse data shape of the decoder: 16-bit samples in, 4-bit codes
// out (4:1 compression), so the *input* object dominates the interface
// memory traffic. Bit-exact against apps::AdpcmEncode.
//
// Objects: 0 = input PCM samples (2-byte elements, mapped IN)
//          1 = output code stream (1-byte elements, mapped OUT)
// Parameters: [0] = sample count (even)
//             [1] = initial predictor value (valprev, as u32)
//             [2] = initial step-table index
#pragma once

#include <string_view>

#include "apps/adpcm.h"
#include "base/types.h"
#include "hw/coprocessor.h"

namespace vcop::cp {

class AdpcmEncodeCoprocessor final : public hw::Coprocessor {
 public:
  static constexpr hw::ObjectId kObjIn = 0;
  static constexpr hw::ObjectId kObjOut = 1;
  static constexpr u32 kNumParams = 3;

  /// Cycles of the serial quantiser per sample (same datapath depth as
  /// the decoder's reconstruction).
  static constexpr u32 kEncodeCyclesPerSample = 13;

  std::string_view name() const override { return "adpcmencode"; }

 protected:
  void OnStart() override;
  void Step() override;

 private:
  enum class State {
    kReadLow,   // on capture: BeginDelay for the low-sample quantise
    kReadHigh,  // on capture: BeginDelay for the high-sample quantise
    kWriteByte,
  };

  State state_ = State::kReadLow;
  u32 n_samples_ = 0;
  u32 pos_ = 0;  // sample pair index (= output byte index)
  u32 sample_ = 0;
  u8 low_code_ = 0;
  u8 byte_ = 0;
  apps::AdpcmState predictor_{};
};

}  // namespace vcop::cp
