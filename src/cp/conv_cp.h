// 3x3 convolution coprocessor.
//
// Walks the inner pixels of a width x height u8 image, reading the 3x3
// neighbourhood through the virtual interface (so three image rows are
// live at once — a strided working set), and copies the border through.
// Bit-exact against apps::Convolve3x3.
//
// Objects: 0 = source image  (1-byte elements, mapped IN)
//          1 = destination   (1-byte elements, mapped OUT)
//          2 = kernel coefficients, 9 x u32 two's-complement (mapped IN)
// Parameters: [0] = width, [1] = height, [2] = normalising right-shift
#pragma once

#include <string_view>

#include "apps/conv2d.h"
#include "base/types.h"
#include "hw/coprocessor.h"

namespace vcop::cp {

class Conv3x3Coprocessor final : public hw::Coprocessor {
 public:
  static constexpr hw::ObjectId kObjSrc = 0;
  static constexpr hw::ObjectId kObjDst = 1;
  static constexpr hw::ObjectId kObjKernel = 2;
  static constexpr u32 kNumParams = 3;

  /// MAC-array settling time once the 9 taps are latched.
  static constexpr u32 kComputeCycles = 3;

  std::string_view name() const override { return "conv3x3"; }

 protected:
  void OnStart() override;
  void Step() override;

 private:
  enum class State {
    kLoadKernel,
    kBorderRead,   // copy-through of the one-pixel frame
    kBorderWrite,
    kReadTap,      // 9 reads; 9th capture BeginDelay(kComputeCycles)
    kWritePixel,
    kDone,
  };

  /// Index of the current border pixel (walks a precomputed sequence).
  u32 BorderIndex() const;
  u32 NumBorderPixels() const;
  void AdvanceInner();

  State state_ = State::kLoadKernel;
  u32 width_ = 0;
  u32 height_ = 0;
  u32 shift_ = 0;
  i32 kernel_[9] = {};
  u32 kernel_loaded_ = 0;

  u32 border_pos_ = 0;
  u32 border_value_ = 0;

  u32 x_ = 1;
  u32 y_ = 1;
  u32 tap_ = 0;
  i64 acc_ = 0;
  u32 out_value_ = 0;
};

}  // namespace vcop::cp
