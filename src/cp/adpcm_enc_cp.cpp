#include "cp/adpcm_enc_cp.h"

namespace vcop::cp {

void AdpcmEncodeCoprocessor::OnStart() {
  n_samples_ = param(0);
  predictor_.valprev = static_cast<i16>(param(1));
  predictor_.index = static_cast<u8>(param(2));
  pos_ = 0;
  state_ = State::kReadLow;
}

void AdpcmEncodeCoprocessor::Step() {
  switch (state_) {
    case State::kReadLow:
      if (2 * pos_ >= n_samples_) {
        Finish();
        break;
      }
      if (TryRead(kObjIn, 2 * pos_, sample_)) {
        // Quantising the captured sample takes the serial datapath the
        // next kEncodeCyclesPerSample edges; the result is not
        // observable outside the core until then.
        low_code_ = apps::AdpcmEncodeSample(
            static_cast<i16>(static_cast<u16>(sample_)), predictor_);
        BeginDelay(kEncodeCyclesPerSample);
        state_ = State::kReadHigh;
      }
      break;

    case State::kReadHigh:
      if (TryRead(kObjIn, 2 * pos_ + 1, sample_)) {
        const u8 high_code = apps::AdpcmEncodeSample(
            static_cast<i16>(static_cast<u16>(sample_)), predictor_);
        byte_ = static_cast<u8>(low_code_ | (high_code << 4));
        BeginDelay(kEncodeCyclesPerSample);
        state_ = State::kWriteByte;
      }
      break;

    case State::kWriteByte:
      if (TryWrite(kObjOut, pos_, byte_)) {
        ++pos_;
        state_ = State::kReadLow;
      }
      break;
  }
}

}  // namespace vcop::cp
