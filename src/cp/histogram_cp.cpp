#include "cp/histogram_cp.h"

namespace vcop::cp {

void HistogramCoprocessor::OnStart() {
  n_ = param(0);
  mask_ = param(1);
  i_ = 0;
  state_ = State::kReadValue;
}

void HistogramCoprocessor::Step() {
  switch (state_) {
    case State::kReadValue: {
      if (i_ >= n_) {
        Finish();
        break;
      }
      u32 value = 0;
      if (TryRead(kObjIn, i_, value)) {
        bin_index_ = value & mask_;
        state_ = State::kReadBin;
      }
      break;
    }
    case State::kReadBin:
      if (TryRead(kObjBins, bin_index_, count_)) {
        ++count_;
        state_ = State::kWriteBin;
      }
      break;
    case State::kWriteBin:
      if (TryWrite(kObjBins, bin_index_, count_)) {
        ++i_;
        state_ = State::kReadValue;
      }
      break;
  }
}

}  // namespace vcop::cp
