#include "cp/idea_cp.h"

namespace vcop::cp {

void IdeaCoprocessor::OnStart() {
  n_blocks_ = param(0);
  mode_ = num_params() > 1 ? param(1) : kModeEcb;
  chain_lo_ = num_params() > 2 ? param(2) : 0;
  chain_hi_ = num_params() > 3 ? param(3) : 0;
  blk_ = 0;
  key_index_ = 0;
  state_ = State::kLoadKey;
}

void IdeaCoprocessor::CryptLatchedBlock() {
  // CBC pre-whitening: encrypt operates on P ^ chain.
  if (mode_ == kModeCbcEncrypt) {
    lo_ ^= chain_lo_;
    hi_ ^= chain_hi_;
  }
  const u32 cipher_in_lo = lo_;
  const u32 cipher_in_hi = hi_;

  // Reassemble the block bytes in memory order from the two
  // little-endian 32-bit interface words, transform, and re-pack.
  u8 block[apps::kIdeaBlockBytes];
  for (u32 b = 0; b < 4; ++b) block[b] = static_cast<u8>(lo_ >> (8 * b));
  for (u32 b = 0; b < 4; ++b) block[4 + b] = static_cast<u8>(hi_ >> (8 * b));
  apps::IdeaCryptBlock(subkeys_,
                       std::span<u8, apps::kIdeaBlockBytes>(block));
  lo_ = 0;
  hi_ = 0;
  for (u32 b = 0; b < 4; ++b) lo_ |= static_cast<u32>(block[b]) << (8 * b);
  for (u32 b = 0; b < 4; ++b)
    hi_ |= static_cast<u32>(block[4 + b]) << (8 * b);

  // CBC chaining: encryption chains its own output, decryption chains
  // the incoming ciphertext and post-whitens the plaintext.
  if (mode_ == kModeCbcEncrypt) {
    chain_lo_ = lo_;
    chain_hi_ = hi_;
  } else if (mode_ == kModeCbcDecrypt) {
    lo_ ^= chain_lo_;
    hi_ ^= chain_hi_;
    chain_lo_ = cipher_in_lo;
    chain_hi_ = cipher_in_hi;
  }
}

void IdeaCoprocessor::Step() {
  switch (state_) {
    case State::kLoadKey: {
      u32 word = 0;
      if (TryRead(kObjKey, key_index_, word)) {
        subkeys_[key_index_] = static_cast<u16>(word);
        ++key_index_;
        if (key_index_ == apps::kIdeaSubkeys) state_ = State::kReadLo;
      }
      break;
    }

    case State::kReadLo:
      if (blk_ >= n_blocks_) {
        Finish();
        break;
      }
      if (TryRead(kObjIn, 2 * blk_, lo_)) state_ = State::kReadHi;
      break;

    case State::kReadHi:
      if (TryRead(kObjIn, 2 * blk_ + 1, hi_)) {
        // The block enters the round pipeline on this edge; the result
        // is architecturally visible kPipelineCycles edges later.
        // Computing it now is unobservable — no access leaves the core
        // until the write states run.
        CryptLatchedBlock();
        BeginDelay(kPipelineCycles);
        state_ = State::kWriteLo;
      }
      break;

    case State::kWriteLo:
      if (TryWrite(kObjOut, 2 * blk_, lo_)) state_ = State::kWriteHi;
      break;

    case State::kWriteHi:
      if (TryWrite(kObjOut, 2 * blk_ + 1, hi_)) {
        ++blk_;
        state_ = State::kReadLo;
      }
      break;
  }
}

}  // namespace vcop::cp
