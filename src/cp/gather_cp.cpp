#include "cp/gather_cp.h"

namespace vcop::cp {

void GatherCoprocessor::OnStart() {
  n_ = param(0);
  i_ = 0;
  state_ = State::kReadPerm;
}

void GatherCoprocessor::Step() {
  switch (state_) {
    case State::kReadPerm:
      if (i_ >= n_) {
        Finish();
        break;
      }
      if (TryRead(kObjPerm, i_, perm_)) state_ = State::kReadIn;
      break;
    case State::kReadIn:
      if (TryRead(kObjIn, perm_, value_)) state_ = State::kWriteOut;
      break;
    case State::kWriteOut:
      if (TryWrite(kObjOut, i_, value_)) {
        ++i_;
        state_ = State::kReadPerm;
      }
      break;
  }
}

}  // namespace vcop::cp
