#include "cp/vecadd_cp.h"

namespace vcop::cp {

void VecAddCoprocessor::OnStart() {
  n_ = param(0);
  i_ = 0;
  state_ = State::kReadA;
}

void VecAddCoprocessor::Step() {
  switch (state_) {
    case State::kReadA:  // Figure 5 cycle 1
      if (i_ >= n_) {
        Finish();
        break;
      }
      if (TryRead(kObjA, i_, a_)) state_ = State::kReadB;
      break;
    case State::kReadB:  // Figure 5 cycle 2
      if (TryRead(kObjB, i_, b_)) {
        c_ = a_ + b_;
        state_ = State::kWriteC;
      }
      break;
    case State::kWriteC:  // Figure 5 cycle 3
      if (TryWrite(kObjC, i_, c_)) {
        ++i_;
        state_ = State::kReadA;
      }
      break;
  }
}

}  // namespace vcop::cp
