#include "cp/registry.h"

#include <memory>

#include "cp/adpcm_cp.h"
#include "cp/adpcm_enc_cp.h"
#include "cp/conv_cp.h"
#include "cp/gather_cp.h"
#include "cp/histogram_cp.h"
#include "cp/idea_cp.h"
#include "cp/vecadd_cp.h"

namespace vcop::cp {

hw::Bitstream VecAddBitstream() {
  hw::Bitstream bs;
  bs.name = "vecadd";
  bs.size_bytes = 48 * 1024;
  bs.logic_elements = 320;
  bs.cp_clock = Frequency::MHz(40);
  bs.imu_clock = Frequency::MHz(40);
  bs.create = [] { return std::make_unique<VecAddCoprocessor>(); };
  return bs;
}

hw::Bitstream AdpcmDecodeBitstream() {
  hw::Bitstream bs;
  bs.name = "adpcmdecode";
  bs.size_bytes = 96 * 1024;
  bs.logic_elements = 1250;
  bs.cp_clock = Frequency::MHz(40);
  bs.imu_clock = Frequency::MHz(40);
  bs.create = [] { return std::make_unique<AdpcmDecodeCoprocessor>(); };
  return bs;
}

hw::Bitstream AdpcmEncodeBitstream() {
  hw::Bitstream bs;
  bs.name = "adpcmencode";
  bs.size_bytes = 100 * 1024;
  bs.logic_elements = 1400;
  bs.cp_clock = Frequency::MHz(40);
  bs.imu_clock = Frequency::MHz(40);
  bs.create = [] { return std::make_unique<AdpcmEncodeCoprocessor>(); };
  return bs;
}

hw::Bitstream IdeaBitstream() {
  hw::Bitstream bs;
  bs.name = "idea";
  bs.size_bytes = 192 * 1024;
  bs.logic_elements = 3900;
  bs.cp_clock = Frequency::MHz(6);
  bs.imu_clock = Frequency::MHz(24);
  bs.create = [] { return std::make_unique<IdeaCoprocessor>(); };
  return bs;
}

hw::Bitstream Conv3x3Bitstream() {
  hw::Bitstream bs;
  bs.name = "conv3x3";
  bs.size_bytes = 128 * 1024;
  bs.logic_elements = 2100;
  bs.cp_clock = Frequency::MHz(40);
  bs.imu_clock = Frequency::MHz(40);
  bs.create = [] { return std::make_unique<Conv3x3Coprocessor>(); };
  return bs;
}

hw::Bitstream HistogramBitstream() {
  hw::Bitstream bs;
  bs.name = "histogram";
  bs.size_bytes = 56 * 1024;
  bs.logic_elements = 480;
  bs.cp_clock = Frequency::MHz(40);
  bs.imu_clock = Frequency::MHz(40);
  bs.create = [] { return std::make_unique<HistogramCoprocessor>(); };
  return bs;
}

hw::Bitstream GatherBitstream() {
  hw::Bitstream bs;
  bs.name = "gather";
  bs.size_bytes = 52 * 1024;
  bs.logic_elements = 410;
  bs.cp_clock = Frequency::MHz(40);
  bs.imu_clock = Frequency::MHz(40);
  bs.create = [] { return std::make_unique<GatherCoprocessor>(); };
  return bs;
}

}  // namespace vcop::cp
