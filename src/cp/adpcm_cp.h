// ADPCM-decode coprocessor (the paper's adpcmdecode kernel, §4.1).
//
// A serial FSM: fetch one code byte (two 4-bit samples), decode each
// sample through the IMA step table over several cycles, write each
// reconstructed 16-bit sample. Bit-exact against apps::AdpcmDecode.
//
// Objects: 0 = input code stream (1-byte elements, mapped IN)
//          1 = output PCM samples (2-byte elements, mapped OUT)
// Parameters: [0] = input length in bytes
//             [1] = initial predictor value (valprev, as u32)
//             [2] = initial step-table index
#pragma once

#include <string_view>

#include "apps/adpcm.h"
#include "base/types.h"
#include "hw/coprocessor.h"

namespace vcop::cp {

class AdpcmDecodeCoprocessor final : public hw::Coprocessor {
 public:
  static constexpr hw::ObjectId kObjIn = 0;
  static constexpr hw::ObjectId kObjOut = 1;
  static constexpr u32 kNumParams = 3;

  /// Cycles the serial decode datapath spends reconstructing one
  /// sample (step-table lookup, difference accumulation, clamping).
  /// Calibrated so the core's throughput matches the hardware bars of
  /// Figure 8 (≈38 core cycles per input byte at 40 MHz; see
  /// EXPERIMENTS.md).
  static constexpr u32 kDecodeCyclesPerSample = 13;

  std::string_view name() const override { return "adpcmdecode"; }

 protected:
  void OnStart() override;
  void Step() override;

 private:
  enum class State {
    kFetchByte,  // on capture: BeginDelay for the low-nibble decode
    kWriteLow,   // on capture: BeginDelay for the high-nibble decode
    kWriteHigh,
  };

  State state_ = State::kFetchByte;
  u32 n_bytes_ = 0;
  u32 pos_ = 0;
  u32 byte_ = 0;
  i16 sample_ = 0;
  apps::AdpcmState predictor_{};
};

}  // namespace vcop::cp
