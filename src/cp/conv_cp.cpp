#include "cp/conv_cp.h"

namespace vcop::cp {

void Conv3x3Coprocessor::OnStart() {
  width_ = param(0);
  height_ = param(1);
  shift_ = param(2);
  kernel_loaded_ = 0;
  border_pos_ = 0;
  x_ = 1;
  y_ = 1;
  tap_ = 0;
  acc_ = 0;
  state_ = State::kLoadKernel;
}

u32 Conv3x3Coprocessor::NumBorderPixels() const {
  // Top + bottom rows, plus left + right columns of the middle rows.
  return 2 * width_ + 2 * (height_ - 2);
}

u32 Conv3x3Coprocessor::BorderIndex() const {
  const u32 p = border_pos_;
  if (p < width_) return p;                         // top row
  const u32 q = p - width_;
  if (q < width_) return (height_ - 1) * width_ + q;  // bottom row
  const u32 r = q - width_;
  const u32 row = 1 + r / 2;
  const u32 col = (r % 2 == 0) ? 0 : width_ - 1;
  return row * width_ + col;
}

void Conv3x3Coprocessor::AdvanceInner() {
  ++x_;
  if (x_ + 1 >= width_) {
    x_ = 1;
    ++y_;
  }
}

void Conv3x3Coprocessor::Step() {
  switch (state_) {
    case State::kLoadKernel: {
      u32 word = 0;
      if (TryRead(kObjKernel, kernel_loaded_, word)) {
        kernel_[kernel_loaded_] = static_cast<i32>(word);
        ++kernel_loaded_;
        if (kernel_loaded_ == 9) {
          state_ = State::kBorderRead;
        }
      }
      break;
    }

    case State::kBorderRead:
      if (border_pos_ >= NumBorderPixels()) {
        state_ = (width_ > 2 && height_ > 2) ? State::kReadTap
                                             : State::kDone;
        break;
      }
      if (TryRead(kObjSrc, BorderIndex(), border_value_)) {
        state_ = State::kBorderWrite;
      }
      break;

    case State::kBorderWrite:
      if (TryWrite(kObjDst, BorderIndex(), border_value_)) {
        ++border_pos_;
        state_ = State::kBorderRead;
      }
      break;

    case State::kReadTap: {
      if (y_ + 1 >= height_) {
        state_ = State::kDone;
        break;
      }
      const u32 ky = tap_ / 3;
      const u32 kx = tap_ % 3;
      const u32 index = (y_ + ky - 1) * width_ + (x_ + kx - 1);
      u32 pixel = 0;
      if (TryRead(kObjSrc, index, pixel)) {
        acc_ += static_cast<i64>(kernel_[tap_]) *
                static_cast<i64>(pixel & 0xFF);
        ++tap_;
        if (tap_ == 9) {
          // MAC-array settling: the clamped result becomes observable
          // kComputeCycles edges after the last tap is latched.
          i64 v = acc_ >> shift_;
          if (v < 0) v = 0;
          if (v > 255) v = 255;
          out_value_ = static_cast<u32>(v);
          BeginDelay(kComputeCycles);
          state_ = State::kWritePixel;
        }
      }
      break;
    }

    case State::kWritePixel:
      if (TryWrite(kObjDst, y_ * width_ + x_, out_value_)) {
        tap_ = 0;
        acc_ = 0;
        AdvanceInner();
        state_ = State::kReadTap;
      }
      break;

    case State::kDone:
      Finish();
      break;
  }
}

}  // namespace vcop::cp
