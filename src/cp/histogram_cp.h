// Histogram coprocessor: bins[in[i] & mask] += 1.
//
// The hardest access pattern for the paging machinery: data-dependent
// *read-modify-write* on an INOUT object. Every increment must observe
// the bin's current value — including increments the coprocessor itself
// made before the bin's page was evicted and written back — so it
// exercises the dirty-tracking / write-back / reload chain end to end.
// Not from the paper's evaluation.
//
// Objects: 0 = input values (4-byte elements, mapped IN)
//          1 = bins (4-byte elements, mapped INOUT)
// Parameters: [0] = input element count
//             [1] = bin-index mask (bins object must have mask+1
//                   elements; mask + 1 must be a power of two)
#pragma once

#include <string_view>

#include "base/types.h"
#include "hw/coprocessor.h"

namespace vcop::cp {

class HistogramCoprocessor final : public hw::Coprocessor {
 public:
  static constexpr hw::ObjectId kObjIn = 0;
  static constexpr hw::ObjectId kObjBins = 1;
  static constexpr u32 kNumParams = 2;

  std::string_view name() const override { return "histogram"; }

 protected:
  void OnStart() override;
  void Step() override;

 private:
  enum class State { kReadValue, kReadBin, kWriteBin };

  State state_ = State::kReadValue;
  u32 n_ = 0;
  u32 i_ = 0;
  u32 mask_ = 0;
  u32 bin_index_ = 0;
  u32 count_ = 0;
};

}  // namespace vcop::cp
