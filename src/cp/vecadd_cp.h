// Vector-addition coprocessor — the paper's running example.
//
// This is the C++ cycle-level equivalent of Figure 5's VHDL snippet:
// a three-state FSM computing C[i] = A[i] + B[i] that addresses its
// operands purely as (object, index). "No address calculation is
// necessary, nor it is necessary to know the available memory size."
#pragma once

#include <string_view>

#include "base/types.h"
#include "hw/coprocessor.h"

namespace vcop::cp {

class VecAddCoprocessor final : public hw::Coprocessor {
 public:
  /// Object ids agreed with the software side (Figure 6 maps A, B, C
  /// to 0, 1, 2).
  static constexpr hw::ObjectId kObjA = 0;
  static constexpr hw::ObjectId kObjB = 1;
  static constexpr hw::ObjectId kObjC = 2;

  /// Parameter layout: [0] = element count (Figure 6's FPGA_EXECUTE(SIZE)).
  static constexpr u32 kNumParams = 1;

  std::string_view name() const override { return "vecadd"; }

  u32 elements_done() const { return i_; }

 protected:
  void OnStart() override;
  void Step() override;

 private:
  enum class State { kReadA, kReadB, kWriteC };

  State state_ = State::kReadA;
  u32 n_ = 0;
  u32 i_ = 0;  // Figure 5's reg_i
  u32 a_ = 0;  // Figure 5's reg_a
  u32 b_ = 0;  // Figure 5's reg_b
  u32 c_ = 0;  // Figure 5's reg_c
};

}  // namespace vcop::cp
