// IDEA encryption coprocessor (the paper's "complex cryptographic
// application", §4.1).
//
// The paper's core runs at 6 MHz with a 3-stage-pipelined datapath
// while its memory subsystem (the IMU side) runs at 24 MHz, the two
// synchronised "by a stall mechanism". This model keeps the same clock
// arrangement: the FSM fetches one 64-bit block as two 32-bit elements,
// spends kPipelineCycles core cycles pushing the block through the
// round datapath, and writes the two result words. Bit-exact against
// apps::IdeaCryptEcb.
//
// Objects: 0 = input blocks  (4-byte elements, mapped IN)
//          1 = output blocks (4-byte elements, mapped OUT)
//          2 = expanded subkeys, 52 u16 (2-byte elements, mapped IN)
// Parameters: [0] = number of 8-byte blocks
//             [1] = mode (kModeEcb / kModeCbcEncrypt / kModeCbcDecrypt)
//             [2] = IV low word, [3] = IV high word (CBC modes;
//                   little-endian words of the 8 IV bytes)
#pragma once

#include <string_view>

#include "apps/idea.h"
#include "base/types.h"
#include "hw/coprocessor.h"

namespace vcop::cp {

class IdeaCoprocessor final : public hw::Coprocessor {
 public:
  static constexpr hw::ObjectId kObjIn = 0;
  static constexpr hw::ObjectId kObjOut = 1;
  static constexpr hw::ObjectId kObjKey = 2;
  static constexpr u32 kNumParams = 4;

  static constexpr u32 kModeEcb = 0;
  static constexpr u32 kModeCbcEncrypt = 1;
  static constexpr u32 kModeCbcDecrypt = 2;

  /// Core cycles a block occupies the 3-stage round pipeline (8.5
  /// Lai–Massey rounds at ~1 round/cycle through the reused datapath).
  static constexpr u32 kPipelineCycles = 8;

  std::string_view name() const override { return "idea"; }

  u32 blocks_done() const { return blk_; }

 protected:
  void OnStart() override;
  void Step() override;

 private:
  enum class State {
    kLoadKey,   // one-time: pull the 52 subkeys into core registers
    kReadLo,
    kReadHi,    // on capture: crypt + BeginDelay(kPipelineCycles)
    kWriteLo,
    kWriteHi,
  };

  /// Runs the reference round function on the latched 64-bit block.
  void CryptLatchedBlock();

  State state_ = State::kLoadKey;
  u32 n_blocks_ = 0;
  u32 blk_ = 0;
  u32 key_index_ = 0;
  u32 mode_ = kModeEcb;
  apps::IdeaSubkeys subkeys_{};
  u32 lo_ = 0;
  u32 hi_ = 0;
  u32 chain_lo_ = 0;  // CBC chaining register (previous ciphertext)
  u32 chain_hi_ = 0;
};

}  // namespace vcop::cp
