#include "cp/adpcm_cp.h"

namespace vcop::cp {

void AdpcmDecodeCoprocessor::OnStart() {
  n_bytes_ = param(0);
  predictor_.valprev = static_cast<i16>(param(1));
  predictor_.index = static_cast<u8>(param(2));
  pos_ = 0;
  state_ = State::kFetchByte;
}

void AdpcmDecodeCoprocessor::Step() {
  switch (state_) {
    case State::kFetchByte:
      if (pos_ >= n_bytes_) {
        Finish();
        break;
      }
      if (TryRead(kObjIn, pos_, byte_)) {
        // The serial datapath spends the next kDecodeCyclesPerSample
        // edges reconstructing the low-nibble sample; computing it on
        // the capture edge is unobservable from outside the core.
        sample_ = apps::AdpcmDecodeSample(byte_ & 0x0F, predictor_);
        BeginDelay(kDecodeCyclesPerSample);
        state_ = State::kWriteLow;
      }
      break;

    case State::kWriteLow:
      if (TryWrite(kObjOut, 2 * pos_, static_cast<u16>(sample_))) {
        sample_ = apps::AdpcmDecodeSample((byte_ >> 4) & 0x0F, predictor_);
        BeginDelay(kDecodeCyclesPerSample);
        state_ = State::kWriteHigh;
      }
      break;

    case State::kWriteHigh:
      if (TryWrite(kObjOut, 2 * pos_ + 1, static_cast<u16>(sample_))) {
        ++pos_;
        state_ = State::kFetchByte;
      }
      break;
  }
}

}  // namespace vcop::cp
