// Gather coprocessor: out[i] = in[perm[i]].
//
// Unlike the paper's two streaming kernels, gather has a data-dependent
// access pattern — §1's "other cases with more unpredictable accesses
// are much more difficult to manage" by hand, and exactly where OS-
// managed paging earns its keep. It doubles as the replacement-policy
// stressor for the ablation benches and the property tests.
#pragma once

#include <string_view>

#include "base/types.h"
#include "hw/coprocessor.h"

namespace vcop::cp {

class GatherCoprocessor final : public hw::Coprocessor {
 public:
  static constexpr hw::ObjectId kObjIn = 0;    // u32 elements (IN)
  static constexpr hw::ObjectId kObjOut = 1;   // u32 elements (OUT)
  static constexpr hw::ObjectId kObjPerm = 2;  // u32 indices (IN)
  static constexpr u32 kNumParams = 1;         // [0] = element count

  std::string_view name() const override { return "gather"; }

 protected:
  void OnStart() override;
  void Step() override;

 private:
  enum class State { kReadPerm, kReadIn, kWriteOut };

  State state_ = State::kReadPerm;
  u32 n_ = 0;
  u32 i_ = 0;
  u32 perm_ = 0;
  u32 value_ = 0;
};

}  // namespace vcop::cp
