// Bit-stream definitions for the shipped coprocessor cores.
//
// Each function returns a hw::Bitstream bundling the synthesised core's
// factory with the physical characteristics the paper reports (or, for
// vecadd, plausible values for such a trivial design on the EPXA1 PLD).
#pragma once

#include "base/units.h"
#include "hw/fabric.h"

namespace vcop::cp {

/// The Figure-5 vector adder. Tiny; clocks comfortably at the PLD's
/// 40 MHz alongside its IMU.
hw::Bitstream VecAddBitstream();

/// adpcmdecode: "the adpcmdecode coprocessor and the IMU are running at
/// the frequency of 40 MHz" (§4.1).
hw::Bitstream AdpcmDecodeBitstream();

/// ADPCM *encoder* — the companion core completing the hardware codec
/// path; not evaluated in the paper.
hw::Bitstream AdpcmEncodeBitstream();

/// IDEA: "a complex coprocessor core running at 6 MHz with 3 pipeline
/// stages [...] the IMU and IDEA's memory subsystem are running at
/// 24 MHz" (§4.1). Nearly fills the EPXA1's 4160 logic elements —
/// "exploiting IDEA's parallelism in hardware was limited by the
/// limited PLD resources of the device used".
hw::Bitstream IdeaBitstream();

/// Gather (out[i] = in[perm[i]]): the irregular-access stressor used by
/// the policy ablations; not from the paper's evaluation.
hw::Bitstream GatherBitstream();

/// 3x3 image convolution: the strided-access application domain; not
/// from the paper's evaluation.
hw::Bitstream Conv3x3Bitstream();

/// Histogram (bins[in[i] & mask] += 1): data-dependent read-modify-
/// write on an INOUT object — the dirty-tracking stressor; not from
/// the paper's evaluation.
hw::Bitstream HistogramBitstream();

}  // namespace vcop::cp
