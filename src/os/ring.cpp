#include "os/ring.h"

#include "base/table.h"

namespace vcop::os {

namespace {

/// FNV-1a, folded over the descriptor's payload words.
u32 Fnv1a(const u32* words, usize count, u32 hash = 2166136261u) {
  for (usize i = 0; i < count; ++i) {
    // Byte-at-a-time keeps the hash identical across endianness of the
    // simulated "shared memory" layout.
    for (u32 shift = 0; shift < 32; shift += 8) {
      hash ^= (words[i] >> shift) & 0xffu;
      hash *= 16777619u;
    }
  }
  return hash;
}

u32 CheckRingEntries(u32 entries) {
  VCOP_CHECK_MSG(entries >= 2 && entries <= 32768 &&
                     (entries & (entries - 1)) == 0,
                 "ring size must be a power of two in [2, 32768]");
  return entries;
}

}  // namespace

u32 RingDescriptor::ComputeChecksum() const {
  u32 hash = 2166136261u;
  const u32 cookie_words[2] = {static_cast<u32>(cookie),
                               static_cast<u32>(cookie >> 32)};
  hash = Fnv1a(cookie_words, 2, hash);
  const u32 head_words[2] = {design, nparams};
  hash = Fnv1a(head_words, 2, hash);
  hash = Fnv1a(params.data(), params.size(), hash);
  for (const u64 ref : object_refs) {
    const u32 ref_words[2] = {static_cast<u32>(ref),
                              static_cast<u32>(ref >> 32)};
    hash = Fnv1a(ref_words, 2, hash);
  }
  hash = Fnv1a(&nrefs, 1, hash);
  return hash;
}

SubmissionRing::SubmissionRing(u32 entries)
    : indices_(CheckRingEntries(entries)), slots_(entries) {}

Status SubmissionRing::Publish(RingDescriptor descriptor) {
  if (indices_.full()) {
    ++stats_.full_rejections;
    return ResourceExhaustedError(
        StrFormat("submission ring full (%u entries) — back off and "
                  "resubmit",
                  indices_.entries()));
  }
  descriptor.Seal();
  slots_[indices_.producer_slot()] = descriptor;
  if (indices_.AdvanceProducer()) ++stats_.index_wraps;
  ++stats_.published;
  return Status::Ok();
}

RingDescriptor& SubmissionRing::Head() {
  VCOP_CHECK_MSG(!indices_.empty(), "Head() on an empty submission ring");
  return slots_[indices_.consumer_slot()];
}

RingDescriptor SubmissionRing::Consume() {
  RingDescriptor descriptor = Head();
  indices_.AdvanceConsumer();
  ++stats_.consumed;
  return descriptor;
}

CompletionRing::CompletionRing(u32 entries)
    : indices_(CheckRingEntries(entries)), slots_(entries) {}

Status CompletionRing::Push(const CompletionDescriptor& completion) {
  if (indices_.full()) {
    ++stats_.full_rejections;
    return ResourceExhaustedError(
        StrFormat("completion ring full (%u entries) — tenant stopped "
                  "reaping",
                  indices_.entries()));
  }
  slots_[indices_.producer_slot()] = completion;
  if (indices_.AdvanceProducer()) ++stats_.index_wraps;
  ++stats_.published;
  return Status::Ok();
}

CompletionDescriptor CompletionRing::Reap() {
  VCOP_CHECK_MSG(!indices_.empty(), "Reap() on an empty completion ring");
  CompletionDescriptor completion = slots_[indices_.consumer_slot()];
  indices_.AdvanceConsumer();
  ++stats_.consumed;
  return completion;
}

bool CompletionRing::SetSuppressed(bool suppressed) {
  suppressed_ = suppressed;
  return !suppressed && !indices_.empty();
}

}  // namespace vcop::os
