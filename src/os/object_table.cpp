#include "os/object_table.h"

#include "base/table.h"

namespace vcop::os {

std::string_view ToString(Direction d) {
  switch (d) {
    case Direction::kIn: return "IN";
    case Direction::kOut: return "OUT";
    case Direction::kInOut: return "INOUT";
  }
  return "?";
}

Status ObjectTable::Map(const MappedObject& object) {
  if (object.id >= hw::kMaxObjects) {
    return InvalidArgumentError(
        StrFormat("object id %u out of range (max %u)", object.id,
                  hw::kMaxObjects - 1));
  }
  if (object.id == hw::kParamObject) {
    return InvalidArgumentError(StrFormat(
        "object id %u is reserved for parameter passing", object.id));
  }
  if (slots_[object.id].has_value()) {
    return FailedPreconditionError(
        StrFormat("object %u is already mapped", object.id));
  }
  if (object.size_bytes == 0) {
    return InvalidArgumentError("cannot map a zero-sized object");
  }
  if (object.elem_width != 1 && object.elem_width != 2 &&
      object.elem_width != 4) {
    return InvalidArgumentError(
        StrFormat("element width %u is not 1, 2 or 4", object.elem_width));
  }
  if (object.size_bytes % object.elem_width != 0) {
    return InvalidArgumentError(
        StrFormat("object size %u is not a multiple of element width %u",
                  object.size_bytes, object.elem_width));
  }
  if (object.page_bytes != 0 &&
      !mem::IsValidObjectPageBytes(object.page_bytes)) {
    return InvalidArgumentError(StrFormat(
        "object page size %u is not a power of two in [%u, %u]",
        object.page_bytes, mem::kMinObjectPageBytes,
        mem::kMaxObjectPageBytes));
  }
  slots_[object.id] = object;
  ++count_;
  return Status::Ok();
}

Status ObjectTable::Unmap(hw::ObjectId id) {
  if (id >= hw::kMaxObjects || !slots_[id].has_value()) {
    return NotFoundError(StrFormat("object %u is not mapped", id));
  }
  slots_[id].reset();
  --count_;
  return Status::Ok();
}

Status ObjectTable::Repoint(hw::ObjectId id, mem::UserAddr addr) {
  if (id >= hw::kMaxObjects || !slots_[id].has_value()) {
    return NotFoundError(StrFormat("object %u is not mapped", id));
  }
  slots_[id]->user_addr = addr;
  return Status::Ok();
}

void ObjectTable::Clear() {
  for (auto& slot : slots_) slot.reset();
  count_ = 0;
}

const MappedObject* ObjectTable::Find(hw::ObjectId id) const {
  if (id >= hw::kMaxObjects || !slots_[id].has_value()) return nullptr;
  return &*slots_[id];
}

std::vector<MappedObject> ObjectTable::All() const {
  std::vector<MappedObject> out;
  out.reserve(count_);
  for (const auto& slot : slots_) {
    if (slot.has_value()) out.push_back(*slot);
  }
  return out;
}

}  // namespace vcop::os
