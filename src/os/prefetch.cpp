#include "os/prefetch.h"

#include "base/status.h"

namespace vcop::os {

std::string_view ToString(PrefetchKind kind) {
  switch (kind) {
    case PrefetchKind::kNone: return "none";
    case PrefetchKind::kSequential: return "sequential";
  }
  return "?";
}

namespace {

class NonePrefetcher final : public Prefetcher {
 public:
  std::string_view name() const override { return "none"; }
  std::vector<PrefetchSuggestion> Suggest(hw::ObjectId, mem::VirtPage,
                                          u32) override {
    return {};
  }
};

/// Streams: after a fault on page p, also bring in p+1..p+depth of the
/// same object — both benchmarks walk their objects sequentially.
class SequentialPrefetcher final : public Prefetcher {
 public:
  explicit SequentialPrefetcher(u32 depth) : depth_(depth) {
    VCOP_CHECK_MSG(depth >= 1, "prefetch depth must be >= 1");
  }

  std::string_view name() const override { return "sequential"; }

  std::vector<PrefetchSuggestion> Suggest(hw::ObjectId object,
                                          mem::VirtPage vpage,
                                          u32 num_pages) override {
    std::vector<PrefetchSuggestion> out;
    for (u32 d = 1; d <= depth_; ++d) {
      const mem::VirtPage next = vpage + d;
      if (next >= num_pages) break;
      out.push_back(PrefetchSuggestion{object, next});
    }
    return out;
  }

 private:
  u32 depth_;
};

}  // namespace

std::unique_ptr<Prefetcher> MakePrefetcher(PrefetchKind kind, u32 depth) {
  switch (kind) {
    case PrefetchKind::kNone: return std::make_unique<NonePrefetcher>();
    case PrefetchKind::kSequential:
      return std::make_unique<SequentialPrefetcher>(depth);
  }
  VCOP_CHECK(false);
  return nullptr;
}

}  // namespace vcop::os
