#include "os/prefetch.h"

#include <array>
#include <cstdlib>

#include "base/status.h"

namespace vcop::os {

std::string_view ToString(PrefetchKind kind) {
  switch (kind) {
    case PrefetchKind::kNone: return "none";
    case PrefetchKind::kSequential: return "sequential";
    case PrefetchKind::kStride: return "stride";
    case PrefetchKind::kAdaptive: return "adaptive";
  }
  return "?";
}

namespace {

/// Appends vpage + stride*d for d = 1..depth, dropping anything that
/// leaves [0, num_pages). The VIM re-checks the contract anyway; the
/// strategies stay polite so dropped-suggestion counters mean "bug".
void SuggestAlong(std::vector<PrefetchSuggestion>& out, hw::ObjectId object,
                  mem::VirtPage vpage, i64 stride, u32 depth,
                  u32 num_pages) {
  for (u32 d = 1; d <= depth; ++d) {
    const i64 next = static_cast<i64>(vpage) + stride * static_cast<i64>(d);
    if (next < 0 || next >= static_cast<i64>(num_pages)) break;
    out.push_back(
        PrefetchSuggestion{object, static_cast<mem::VirtPage>(next)});
  }
}

class NonePrefetcher final : public Prefetcher {
 public:
  std::string_view name() const override { return "none"; }
  std::vector<PrefetchSuggestion> Suggest(hw::ObjectId, mem::VirtPage,
                                          u32) override {
    return {};
  }
};

/// Streams: after a fault on page p, also bring in p+1..p+depth of the
/// same object — both paper benchmarks walk their objects sequentially.
class SequentialPrefetcher final : public Prefetcher {
 public:
  explicit SequentialPrefetcher(u32 depth) : depth_(depth) {
    VCOP_CHECK_MSG(depth >= 1, "prefetch depth must be >= 1");
  }

  std::string_view name() const override { return "sequential"; }

  std::vector<PrefetchSuggestion> Suggest(hw::ObjectId object,
                                          mem::VirtPage vpage,
                                          u32 num_pages) override {
    std::vector<PrefetchSuggestion> out;
    SuggestAlong(out, object, vpage, /*stride=*/1, depth_, num_pages);
    return out;
  }

 private:
  u32 depth_;
};

/// One dominant stride per object, learned from the inter-fault page
/// deltas with a saturating confidence counter: a confirmed delta
/// strengthens the stride, a miss weakens it, and the stride is only
/// replaced once confidence drains to zero. Suggestions are issued at
/// confidence >= 2, so a couple of matching deltas arm the prefetcher
/// and a noisy object disarms it instead of polluting the frame pool.
class StridePrefetcher final : public Prefetcher {
 public:
  explicit StridePrefetcher(u32 depth) : depth_(depth) {
    VCOP_CHECK_MSG(depth >= 1, "prefetch depth must be >= 1");
  }

  std::string_view name() const override { return "stride"; }

  std::vector<PrefetchSuggestion> Suggest(hw::ObjectId object,
                                          mem::VirtPage vpage,
                                          u32 num_pages) override {
    VCOP_CHECK_MSG(object < hw::kMaxObjects, "object id out of range");
    Entry& e = entries_[object];
    std::vector<PrefetchSuggestion> out;
    if (!e.seen) {
      e.seen = true;
      e.last = vpage;
      return out;
    }
    const i64 delta = static_cast<i64>(vpage) - static_cast<i64>(e.last);
    e.last = vpage;
    if (delta == 0) return out;
    if (delta == e.stride) {
      if (e.confidence < kMaxConfidence) ++e.confidence;
    } else if (e.confidence > 0) {
      --e.confidence;
    } else {
      e.stride = delta;
      e.confidence = 1;
    }
    if (e.confidence >= kConfident && e.stride != 0) {
      SuggestAlong(out, object, vpage, e.stride, depth_, num_pages);
    }
    return out;
  }

  void Reset() override { entries_ = {}; }

 private:
  static constexpr u32 kConfident = 2;
  static constexpr u32 kMaxConfidence = 3;

  struct Entry {
    bool seen = false;
    mem::VirtPage last = 0;
    i64 stride = 0;
    u32 confidence = 0;
  };
  u32 depth_;
  std::array<Entry, hw::kMaxObjects> entries_{};
};

/// Reference-prediction table (Chen & Baer): each object owns a few
/// stream slots, each slot a (last, stride) pair driven by the classic
/// two-bit automaton init/transient/steady/no-pred. A fault is matched
/// to the slot that predicted it (last + stride), else to the nearest
/// slot within a window (stride re-learned), else it replaces the
/// weakest slot. Only steady streams issue prefetches, so irregular
/// objects degrade to a no-op instead of guessing; interleaved streams
/// (conv2d's three live rows faulting in rotation) each keep their own
/// slot and their own +1 stride.
class AdaptivePrefetcher final : public Prefetcher {
 public:
  explicit AdaptivePrefetcher(u32 depth) : depth_(depth) {
    VCOP_CHECK_MSG(depth >= 1, "prefetch depth must be >= 1");
  }

  std::string_view name() const override { return "adaptive"; }

  std::vector<PrefetchSuggestion> Suggest(hw::ObjectId object,
                                          mem::VirtPage vpage,
                                          u32 num_pages) override {
    VCOP_CHECK_MSG(object < hw::kMaxObjects, "object id out of range");
    std::array<Stream, kStreamsPerObject>& streams = table_[object];
    std::vector<PrefetchSuggestion> out;

    // 1. A stream predicted exactly this page: promote and follow it.
    for (Stream& s : streams) {
      if (!s.valid || s.stride == 0) continue;
      if (static_cast<i64>(s.last) + s.stride ==
          static_cast<i64>(vpage)) {
        s.state = s.state == State::kNoPred ? State::kTransient
                                            : State::kSteady;
        s.last = vpage;
        if (s.state == State::kSteady) {
          SuggestAlong(out, object, vpage, s.stride, depth_, num_pages);
        }
        return out;
      }
    }

    // 2. Re-fault on a stream's current position: no new information.
    for (const Stream& s : streams) {
      if (s.valid && s.last == vpage) return out;
    }

    // 3. Nearest stream within the association window: mispredicted —
    //    re-learn its stride and demote one automaton step.
    Stream* nearest = nullptr;
    i64 best = kAssociationWindow + 1;
    for (Stream& s : streams) {
      if (!s.valid) continue;
      const i64 gap = std::llabs(static_cast<i64>(vpage) -
                                 static_cast<i64>(s.last));
      if (gap <= kAssociationWindow && gap < best) {
        best = gap;
        nearest = &s;
      }
    }
    if (nearest != nullptr) {
      const i64 observed =
          static_cast<i64>(vpage) - static_cast<i64>(nearest->last);
      switch (nearest->state) {
        case State::kSteady: nearest->state = State::kInit; break;
        case State::kInit:
          nearest->stride = observed;
          nearest->state = State::kTransient;
          break;
        case State::kTransient:
          nearest->stride = observed;
          nearest->state = State::kNoPred;
          break;
        case State::kNoPred: nearest->stride = observed; break;
      }
      nearest->last = vpage;
      return out;
    }

    // 4. A new stream: take a free slot, else the weakest, else round-
    //    robin among equals.
    Stream* slot = nullptr;
    for (Stream& s : streams) {
      if (!s.valid) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) {
      for (Stream& s : streams) {
        if (s.state == State::kNoPred) {
          slot = &s;
          break;
        }
      }
    }
    if (slot == nullptr) {
      slot = &streams[replace_cursor_[object]++ % kStreamsPerObject];
    }
    *slot = Stream{};
    slot->valid = true;
    slot->last = vpage;
    return out;
  }

  void Reset() override {
    table_ = {};
    replace_cursor_ = {};
  }

 private:
  static constexpr usize kStreamsPerObject = 4;
  /// A fault farther than this from every stream starts a new stream
  /// rather than wrecking an established stride.
  static constexpr i64 kAssociationWindow = 8;

  enum class State : u8 { kInit, kTransient, kSteady, kNoPred };

  struct Stream {
    bool valid = false;
    State state = State::kInit;
    mem::VirtPage last = 0;
    i64 stride = 0;
  };

  u32 depth_;
  std::array<std::array<Stream, kStreamsPerObject>, hw::kMaxObjects>
      table_{};
  std::array<u32, hw::kMaxObjects> replace_cursor_{};
};

}  // namespace

std::unique_ptr<Prefetcher> MakePrefetcher(PrefetchKind kind, u32 depth) {
  switch (kind) {
    case PrefetchKind::kNone: return std::make_unique<NonePrefetcher>();
    case PrefetchKind::kSequential:
      return std::make_unique<SequentialPrefetcher>(depth);
    case PrefetchKind::kStride:
      return std::make_unique<StridePrefetcher>(depth);
    case PrefetchKind::kAdaptive:
      return std::make_unique<AdaptivePrefetcher>(depth);
  }
  VCOP_CHECK(false);
  return nullptr;
}

}  // namespace vcop::os
