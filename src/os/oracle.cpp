#include "os/oracle.h"

#include <algorithm>

namespace vcop::os {

OraclePolicy::OraclePolicy(std::shared_ptr<const PageRefTrace> trace)
    : trace_(std::move(trace)) {
  VCOP_CHECK_MSG(trace_ != nullptr, "oracle needs a recorded trace");
  for (u64 i = 0; i < trace_->size(); ++i) {
    const PageRef& ref = (*trace_)[i];
    positions_[PageKey{ref.object, ref.vpage}].push_back(i);
  }
}

void OraclePolicy::Reset(u32 num_frames) {
  frame_page_.assign(num_frames, {false, PageKey{}});
  cursor_ = 0;
}

void OraclePolicy::OnReference(hw::ObjectId object, mem::VirtPage vpage) {
  // Cross-check the replay against the recording: a divergence means
  // the reference string was not policy-independent after all, which
  // would invalidate the oracle's answers.
  if (cursor_ < trace_->size()) {
    const PageRef& expected = (*trace_)[cursor_];
    VCOP_CHECK_MSG(
        expected.object == object && expected.vpage == vpage,
        "replayed reference diverged from the recorded trace");
  }
  ++cursor_;
}

void OraclePolicy::OnInstalledAt(mem::FrameId frame, hw::ObjectId object,
                                 mem::VirtPage vpage) {
  VCOP_CHECK_MSG(frame < frame_page_.size(), "frame out of range");
  frame_page_[frame] = {true, PageKey{object, vpage}};
}

void OraclePolicy::OnFreed(mem::FrameId frame) {
  VCOP_CHECK_MSG(frame < frame_page_.size(), "frame out of range");
  frame_page_[frame].first = false;
}

u64 OraclePolicy::NextUse(const PageKey& page) const {
  const auto it = positions_.find(page);
  if (it == positions_.end()) return ~u64{0};
  const std::vector<u64>& uses = it->second;
  const auto next = std::lower_bound(uses.begin(), uses.end(), cursor_);
  return next == uses.end() ? ~u64{0} : *next;
}

mem::FrameId OraclePolicy::PickVictim(const std::vector<bool>& evictable) {
  mem::FrameId best = 0;
  u64 best_next = 0;
  bool found = false;
  for (mem::FrameId f = 0; f < evictable.size(); ++f) {
    if (!evictable[f]) continue;
    // A frame the VIM may evict but whose page identity we never saw
    // (should not happen — OnInstalledAt mirrors every install) is
    // treated as never-used-again, i.e. a perfect victim.
    const u64 next =
        frame_page_[f].first ? NextUse(frame_page_[f].second) : ~u64{0};
    if (!found || next > best_next) {
      best = f;
      best_next = next;
      found = true;
    }
  }
  VCOP_CHECK_MSG(found, "PickVictim with nothing evictable");
  return best;
}

}  // namespace vcop::os
