// The ring-transport service layer over vcopd.
//
// vcopd's direct Submit/Poll calls couple every tenant to the daemon:
// one call per job, one wake-up per completion, and overload turns into
// unbounded growth of whatever sits in front of the bounded tenant
// queues. VcopService replaces that edge with the virtio shape
// (os/ring.h): per-tenant split rings in simulated shared memory,
// doorbells, and explicit admission control, so thousands of tenants
// can hammer the service while the daemon keeps draining at its own
// rate.
//
// The pipeline, stage by stage — each with its own backpressure:
//
//   tenant ──Publish──▶ submission ring        (full → ResourceExhausted
//          ──Kick─────▶ doorbell                at the edge, never blocks)
//   service ─drain────▶ token bucket           (empty → drain pauses until
//                                               the next token accrues)
//           ─Submit───▶ vcopd tenant queue     (full → descriptor stays in
//                                               the ring; re-drained when a
//                                               completion frees a slot)
//           ─DRR──────▶ the fabric             (existing fair share)
//   service ─complete─▶ completion ring  ──▶  notify, unless suppressed
//
// Doorbell coalescing: a kick while a drain is already scheduled (or an
// admission wait is pending) is absorbed — one kick drains a whole
// batch. Completion-interrupt suppression: while a tenant's completion
// ring is suppressed, completions are pushed silently and the tenant
// polls; lifting suppression reports whether completions arrived in the
// window, the virtio re-check that closes the wake-up race.
//
// Quarantined tenants' doorbells are ignored outright — a tenant that
// wedged the fabric cannot even cause drain work.
//
// Fault model (base/fault.h): kDoorbellLost drops a kick between tenant
// and service — the published descriptors survive in shared memory and
// the service's re-poll watchdog (armed only under a non-empty fault
// plan, like the VIM's) rescues them. kDescriptorCorrupt damages a
// descriptor while it sits in the ring; the drain-time checksum check
// completes it with a clean error instead of executing garbage.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "hw/fabric.h"
#include "os/ring.h"
#include "os/scheduler.h"
#include "os/vcopd.h"

namespace vcop::os {

/// Deterministic integer token bucket. Budget is kept in rate·ps units
/// (one token = kPicosecondsPerSecond of budget), so accrual is exact —
/// no floating point anywhere near admission decisions.
class TokenBucket {
 public:
  /// `rate` = tokens per simulated second (0 = unlimited), `burst` =
  /// bucket capacity. A fresh bucket starts full.
  TokenBucket(u64 rate, u32 burst, Picoseconds now);

  /// Accrues up to `now`, then takes one token if available.
  bool TryTake(Picoseconds now);

  /// Returns a taken token (capped at capacity) — used when a job
  /// passed admission but the next backpressure stage refused it.
  void Refund();

  /// Earliest instant at which TryTake will succeed (`now` when it
  /// would succeed immediately). Pre: rate > 0 or tokens available.
  Picoseconds NextTokenAt(Picoseconds now);

  bool unlimited() const { return rate_ == 0; }

 private:
  void Accrue(Picoseconds now);

  u64 rate_;
  unsigned __int128 capacity_;  // burst, in budget units
  unsigned __int128 budget_;
  Picoseconds last_ = 0;
};

struct VcopServiceConfig {
  /// Entries per ring; defaults from KernelConfig::service.
  u32 ring_entries = 64;
  /// Default per-tenant admission rate (jobs per simulated second,
  /// 0 = unlimited) and burst; AttachTenant may override per tenant.
  u64 admit_rate = 0;
  u32 admit_burst = 16;
  /// Simulated latency between a doorbell write and the service seeing
  /// it (the kick crosses the interconnect as a posted write).
  Picoseconds doorbell_latency = 200'000;  // 200 ns
  /// Re-poll watchdog period: under a non-empty fault plan the service
  /// periodically re-scans attached rings for descriptors whose
  /// doorbell never arrived. Matches the VIM watchdog's default.
  Picoseconds repoll_period = 1'000'000'000;  // 1 ms
  /// Initial completion-interrupt suppression state for new tenants.
  bool start_suppressed = false;

  /// Service defaults as declared by the platform file.
  static VcopServiceConfig FromKernel(const KernelConfig& config);
};

struct VcopServiceStats {
  u64 doorbell_kicks = 0;       // kicks observed (before any filtering)
  u64 doorbells_coalesced = 0;  // absorbed into an already-pending drain
  u64 doorbells_ignored = 0;    // from quarantined tenants
  u64 doorbells_lost = 0;       // injected kDoorbellLost drops
  u64 doorbells_recovered = 0;  // stale rings drained by the watchdog
  u64 drains = 0;               // drain batches that admitted >= 1 job
  u64 drained_jobs = 0;         // descriptors handed to the daemon
  u64 max_batch = 0;            // largest single-drain admission count
  u64 admission_deferrals = 0;  // drains paused on an empty bucket
  u64 daemon_backpressure = 0;  // drains paused on a full tenant queue
  u64 descriptors_rejected = 0;  // corrupt/malformed, completed cleanly
  u64 completions_pushed = 0;
  u64 completions_notified = 0;
  u64 completions_suppressed = 0;  // pushed while interrupts suppressed
  u64 completion_ring_stalls = 0;  // held in overflow until a reap
  u64 repoll_ticks = 0;
};

class VcopService {
 public:
  /// Layers the ring transport over `daemon`. With no explicit config,
  /// ring sizing and admission defaults come from the daemon's
  /// platform file (KernelConfig::service).
  explicit VcopService(Vcopd& daemon,
                       std::optional<VcopServiceConfig> config = {});

  VcopService(const VcopService&) = delete;
  VcopService& operator=(const VcopService&) = delete;

  // ----- design table -----

  /// Registers a design and returns its ring-descriptor id (dedupes by
  /// name: re-registering a known design returns the existing id).
  u32 RegisterDesign(const hw::Bitstream& bitstream);

  // ----- tenant attach -----

  /// Builds the tenant's ring pair and token bucket. Rate/burst
  /// override the service defaults when given. The tenant must already
  /// be registered with the daemon.
  Status AttachTenant(TenantId tenant,
                      std::optional<u64> admit_rate = {},
                      std::optional<u32> admit_burst = {});

  // ----- tenant-side operations (shared-memory writes + doorbell) ---

  /// Publishes one descriptor into the tenant's submission ring. Full
  /// ring: ResourceExhausted immediately (edge backpressure). Does NOT
  /// kick — batch several publishes under one Kick.
  Status Publish(TenantId tenant, const RingDescriptor& descriptor);

  /// Doorbell write: schedules a drain of the tenant's submission ring
  /// unless one is already pending (coalesced), the tenant is
  /// quarantined (ignored), or the kick is lost to fault injection.
  Status Kick(TenantId tenant);

  bool HasCompletions(TenantId tenant) const;
  /// Oldest unreaped completion; FailedPrecondition when none pending.
  Result<CompletionDescriptor> Reap(TenantId tenant);

  /// Sets completion-interrupt suppression. Returns true when
  /// completions were already pending as suppression was lifted — the
  /// caller must re-poll before sleeping (notifications for those were
  /// elided; see CompletionRing::SetSuppressed).
  bool SetInterruptSuppression(TenantId tenant, bool suppressed);

  /// Installs the tenant's completion "interrupt": invoked once per
  /// completion pushed while suppression is off.
  void SetCompletionNotifier(TenantId tenant, std::function<void()> fn);

  // ----- service side -----

  /// Drives rings + daemon until no work remains anywhere: queued
  /// descriptors, pending drains/admission waits, daemon slices and
  /// scheduled arrivals all settle. Restores the kernel VIM binding.
  Status RunUntilQuiescent();

  const VcopServiceStats& stats() const { return stats_; }
  const VcopServiceConfig& config() const { return config_; }
  Vcopd& daemon() { return daemon_; }
  /// Producer/consumer counters of a tenant's rings (nullptr when the
  /// tenant was never attached).
  const RingStats* submission_stats(TenantId tenant) const;
  const RingStats* completion_stats(TenantId tenant) const;

  /// The daemon's schedule report plus the transport rollup
  /// (doorbells, admission, suppression) for bench/JSON reporting.
  ScheduleReport BuildScheduleReport() const;

 private:
  struct Port {
    TenantId tenant = 0;
    SubmissionRing sq;
    CompletionRing cq;
    TokenBucket bucket;
    /// A drain (doorbell or admission retry) is already scheduled;
    /// kicks arriving meanwhile are coalesced into it.
    bool drain_scheduled = false;
    std::function<void()> notify;
    /// Completions that did not fit the completion ring; drained back
    /// into it as the tenant reaps.
    std::deque<CompletionDescriptor> overflow;

    Port(TenantId id, u32 entries, u64 rate, u32 burst, Picoseconds now)
        : tenant(id), sq(entries), cq(entries), bucket(rate, burst, now) {}
  };

  Port* FindPort(TenantId tenant);
  const Port* FindPort(TenantId tenant) const;

  void ScheduleDrain(Port& port, Picoseconds delay);
  void DrainPort(Port& port);
  void PushCompletion(Port& port, const CompletionDescriptor& completion);
  void OnJobComplete(Port& port, u64 cookie, const JobResult& result);
  void ArmRepoll();
  void RepollTick();
  bool AnyTransportWork() const;

  Vcopd& daemon_;
  VcopServiceConfig config_;
  std::vector<hw::Bitstream> designs_;
  std::vector<std::unique_ptr<Port>> ports_;
  bool repoll_armed_ = false;
  VcopServiceStats stats_;
};

}  // namespace vcop::os
