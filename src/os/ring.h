// Virtio-style split rings between tenants and the vcopd service.
//
// The direct Submit/Poll API (os/vcopd.h) makes every submission a
// function call into the daemon — fine for a handful of tenants, but it
// couples the tenants' submission rate to the daemon's service rate.
// Virtio's split-ring layout decouples them: each tenant owns a
// *submission ring* and a *completion ring* in simulated shared memory.
// The tenant publishes fixed-size descriptors and rings a doorbell; the
// service drains a whole batch per kick (doorbell coalescing) and
// pushes completion descriptors back, optionally without notifying
// (interrupt suppression), so a loaded tenant polls cheaply instead of
// taking a wake-up per job.
//
// Layout decisions mirror virtio's, scaled to this platform model:
//
//   * Descriptors are fixed-size POD. A descriptor names a *design id*
//     (registered once with the service — the ring never carries a
//     bit-stream), the scalar parameters, up to four object-table refs,
//     and an opaque completion cookie the tenant uses to match
//     completions to requests. Object refs today are ids in the
//     tenant's own table; the field is 64-bit wide so a future IOMMU
//     path can point them at user virtual addresses directly
//     (ROADMAP item 1) without changing the ring ABI.
//   * Indices are free-running u16s, masked by the (power-of-two) ring
//     size on access — exactly virtio's avail/used scheme, so
//     wrap-around at the 65536 boundary is part of normal operation
//     and is exercised by tests/service_test.
//   * A checksum seals each submission descriptor when it is published.
//     The service validates it at drain time: a descriptor corrupted in
//     shared memory (fault site kDescriptorCorrupt) is completed with a
//     clean error instead of reaching the fabric.
//
// The rings are single-producer/single-consumer by construction (one
// tenant, one daemon), so in the simulated timeline no locking is
// modelled — "shared memory" is the ring object itself.
#pragma once

#include <array>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::os {

/// Scalar parameters a ring descriptor can carry (the widest in-tree
/// core, IDEA, takes 4; the parameter page itself remains the limit for
/// the direct API).
inline constexpr u32 kRingMaxParams = 8;
/// Object-table references a descriptor can carry (bookkeeping today;
/// sized for the future IOMMU path).
inline constexpr u32 kRingMaxObjectRefs = 4;

/// One submission: fixed-size, sealed with a checksum at publish time.
struct RingDescriptor {
  /// Opaque tenant-chosen completion cookie, echoed back verbatim.
  u64 cookie = 0;
  /// Design id from VcopService::RegisterDesign.
  u32 design = 0;
  u32 nparams = 0;
  std::array<u32, kRingMaxParams> params{};
  /// Object-table refs (64-bit so a future IOMMU path can carry user
  /// virtual addresses here instead of table ids).
  std::array<u64, kRingMaxObjectRefs> object_refs{};
  u32 nrefs = 0;
  /// FNV-1a over every field above; see Seal()/IntactAtDrain().
  u32 checksum = 0;

  /// Computes the checksum over the payload fields.
  u32 ComputeChecksum() const;
  /// Seals the descriptor for publication.
  void Seal() { checksum = ComputeChecksum(); }
  /// Whether the payload still matches the seal.
  bool Intact() const { return checksum == ComputeChecksum(); }
};

/// One completion, pushed by the service. Carries the daemon's timing
/// decomposition headline numbers; the full ExecutionReport stays on
/// the daemon side (Vcopd::Poll) — the ring is for steady-state load,
/// not introspection.
struct CompletionDescriptor {
  u64 cookie = 0;
  /// ErrorCode of the job's final status (kOk on success).
  u32 code = 0;
  u32 preemptions = 0;
  Picoseconds submitted_at = 0;  // admission into the daemon
  Picoseconds started_at = 0;    // first dispatch onto the fabric
  Picoseconds finished_at = 0;
};

struct RingStats {
  u64 published = 0;      // producer pushes that succeeded
  u64 full_rejections = 0;  // pushes refused because the ring was full
  u64 consumed = 0;       // consumer pops
  u64 index_wraps = 0;    // free-running index wrapped past 65535
};

namespace ring_internal {

/// Free-running u16 producer/consumer indices over a power-of-two
/// ring — virtio's avail/used index scheme.
class SplitIndices {
 public:
  explicit SplitIndices(u32 entries) : entries_(entries) {}

  u32 entries() const { return entries_; }
  u32 size() const { return static_cast<u16>(produced_ - consumed_); }
  bool empty() const { return produced_ == consumed_; }
  bool full() const { return size() == entries_; }
  u32 producer_slot() const { return produced_ & (entries_ - 1); }
  u32 consumer_slot() const { return consumed_ & (entries_ - 1); }
  /// Advances the producer index; reports a u16 wrap for stats.
  bool AdvanceProducer() { return ++produced_ == 0; }
  void AdvanceConsumer() { ++consumed_; }

 private:
  u32 entries_;
  u16 produced_ = 0;
  u16 consumed_ = 0;
};

}  // namespace ring_internal

/// Tenant-side producer, service-side consumer.
class SubmissionRing {
 public:
  /// `entries` must be a power of two in [2, 32768] (half the u16 index
  /// space, so full/empty stay distinguishable).
  explicit SubmissionRing(u32 entries);

  /// Publishes a descriptor (sealing it). Full ring: ResourceExhausted
  /// immediately — the edge backpressure signal; never blocks.
  Status Publish(RingDescriptor descriptor);

  bool empty() const { return indices_.empty(); }
  u32 size() const { return indices_.size(); }
  u32 entries() const { return indices_.entries(); }

  /// Consumer head, for in-place inspection (and fault injection).
  /// Pre: !empty().
  RingDescriptor& Head();
  /// Consumes the head. Pre: !empty().
  RingDescriptor Consume();

  const RingStats& stats() const { return stats_; }

 private:
  ring_internal::SplitIndices indices_;
  std::vector<RingDescriptor> slots_;  // the simulated shared memory
  RingStats stats_;
};

/// Service-side producer, tenant-side consumer.
class CompletionRing {
 public:
  explicit CompletionRing(u32 entries);

  /// Pushes a completion. A full completion ring means the tenant has
  /// stopped reaping; the push fails and the service holds the
  /// completion (it retries on the next reap).
  Status Push(const CompletionDescriptor& completion);

  bool empty() const { return indices_.empty(); }
  u32 size() const { return indices_.size(); }
  u32 entries() const { return indices_.entries(); }

  /// Consumes the oldest completion. Pre: !empty().
  CompletionDescriptor Reap();

  // ----- interrupt suppression (virtio's used-ring flags) -----

  /// While suppressed, the service pushes completions without
  /// notifying. Returns whether completions were already pending at the
  /// moment suppression was lifted — the re-check the tenant must do
  /// before sleeping, because notifications for those were elided.
  bool SetSuppressed(bool suppressed);
  bool suppressed() const { return suppressed_; }

  const RingStats& stats() const { return stats_; }

 private:
  ring_internal::SplitIndices indices_;
  std::vector<CompletionDescriptor> slots_;
  RingStats stats_;
  bool suppressed_ = false;
};

}  // namespace vcop::os
