// Calibration constants for the modelled OS and platform costs.
//
// The paper measured a physical EPXA1 board; we do not have one, so the
// *unit costs* of OS work are set here, each with a derivation from a
// number the paper reports (or from well-known ARM9/Linux magnitudes
// where the paper is silent). Everything else — fault counts, transfer
// volumes, stall times, speedups, crossovers — is emergent from the
// simulation. Change these constants and the shapes must (and do)
// persist; see bench/abl_platforms and EXPERIMENTS.md.
#pragma once

#include "base/types.h"
#include "base/units.h"
#include "mem/ahb.h"

namespace vcop::os {

struct CostModel {
  /// The ARM-stripe clock: "an ARM processor running at 133 MHz" (§4).
  Frequency cpu_clock = Frequency::MHz(133);

  /// Syscall entry/exit (trap, register save, dispatch, return):
  /// ~4.5 us on ARM-Linux 2.4-era kernels.
  u32 syscall_cycles = 600;

  /// Interrupt entry + handler prologue + exit: ~3.2 us.
  u32 interrupt_entry_cycles = 420;

  /// Fault decode: read SR/AR, identify (object, index), walk the
  /// object/page tables: ~4.2 us. Together with interrupt entry and the
  /// table updates below this puts one fault's "IMU management" at
  /// ~9 us; across the experiments that keeps the total IMU-management
  /// share at or below the paper's "up to 2.5% of the total execution
  /// time" (§4.1) — the binding case is IDEA at 4 KB, where five faults
  /// and the end-of-operation sweep meet the shortest total runtime.
  u32 fault_decode_cycles = 560;

  /// Installing/replacing one TLB entry over the bus: ~1 us.
  u32 tlb_update_cycles = 130;

  /// Per-page bookkeeping during eviction decisions (policy update,
  /// page-table edit): ~0.8 us.
  u32 page_table_cycles = 110;

  /// FPGA_EXECUTE setup per mapped object (descriptor programming,
  /// validation): ~8 us per object.
  u32 execute_setup_cycles_per_object = 1100;

  /// Waking the sleeping caller at end of operation: ~6 us.
  u32 wakeup_cycles = 800;

  /// vcopd preemption: saving a job's interface context at a fault
  /// boundary (snapshotting translations, page bookkeeping): ~3 us.
  /// Dirty-page write-back is priced separately by the TransferEngine.
  u32 context_save_cycles = 400;

  /// vcopd preemption: re-installing a saved context at resume
  /// (validating and re-loading surviving translations): ~2.4 us.
  u32 context_restore_cycles = 320;

  /// IOMMU IO-TLB miss: the hardware walker resolves one 4 KB user page
  /// against the owning address space's tables (~two dependent SDRAM
  /// reads plus the IO-TLB refill write, ~0.9 us). Paid per compulsory
  /// miss on the zero-copy path; IO-TLB hits are free.
  u32 iommu_walk_cycles = 120;

  /// Base backoff after a failed (bus-errored) page transfer before the
  /// VIM re-runs it; doubles per attempt (~2 us, 4 us, 8 us). Only paid
  /// under fault injection — fault-free transfers never back off.
  u32 transfer_retry_backoff_cycles = 260;

  /// SDRAM-side cost of one 32-bit word within an OS copy loop
  /// (uncached user-page access on ARM9): feeds the TransferEngine.
  /// With the AHB timing below this yields an effective page-move rate
  /// of ~11.8 MB/s double-copy (~173 us per 2 KB page), which matches
  /// the overhead decomposition of Figures 8/9 (see EXPERIMENTS.md).
  u32 sdram_cycles_per_word = 12;

  /// AHB timing of the dual-port-RAM slave (single-cycle data phase,
  /// INCR16 bursts, ARM as the copying master — the EPXA1 VIM path has
  /// no DMA engine).
  mem::AhbTiming ahb{};

  Picoseconds Cycles(u64 n) const { return cpu_clock.Duration(n); }
};

}  // namespace vcop::os
