#include "os/page_manager.h"

namespace vcop::os {

PageManager::PageManager(mem::PageGeometry geometry)
    : geometry_(geometry),
      frames_(geometry.num_frames()),
      generations_(geometry.num_frames(), 0) {}

void PageManager::Reset() {
  frames_.assign(frames_.size(), FrameState{});
  in_use_ = 0;
}

std::optional<mem::FrameId> PageManager::FindResident(
    hw::ObjectId object, mem::VirtPage vpage, hw::Asid asid) const {
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    const FrameState& s = frames_[f];
    if (s.in_use && s.object == object && s.vpage == vpage &&
        s.asid == asid) {
      return f;
    }
  }
  return std::nullopt;
}

std::optional<mem::FrameId> PageManager::FindFree() const {
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    if (!frames_[f].in_use) return f;
  }
  return std::nullopt;
}

void PageManager::Install(mem::FrameId frame, hw::ObjectId object,
                          mem::VirtPage vpage, bool pinned, hw::Asid asid) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(!s.in_use, "Install into an occupied frame");
  VCOP_CHECK_MSG(!FindResident(object, vpage, asid).has_value(),
                 "page is already resident in another frame");
  FrameState next;
  next.in_use = true;
  next.pinned = pinned;
  next.pins = pinned ? 1 : 0;
  next.object = object;
  next.asid = asid;
  next.vpage = vpage;
  s = next;
  ++generations_[frame];
  ++in_use_;
}

FrameState PageManager::Release(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use, "Release of a free frame");
  const FrameState old = s;
  s = FrameState{};
  --in_use_;
  return old;
}

void PageManager::MarkDirty(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use, "MarkDirty on a free frame");
  s.dirty = true;
}

void PageManager::ClearDirty(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use, "ClearDirty on a free frame");
  s.dirty = false;
}

void PageManager::MarkSpeculative(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use, "MarkSpeculative on a free frame");
  s.speculative = true;
}

void PageManager::ClearSpeculative(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use, "ClearSpeculative on a free frame");
  s.speculative = false;
}

u64 PageManager::generation(mem::FrameId frame) const {
  VCOP_CHECK_MSG(frame < generations_.size(), "frame id out of range");
  return generations_[frame];
}

void PageManager::Pin(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use, "Pin on a free frame");
  ++s.pins;
  s.pinned = true;
}

void PageManager::Unpin(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use && s.pins > 0,
                 "Unpin on a frame that is not pinned");
  if (--s.pins == 0) s.pinned = false;
}

const FrameState& PageManager::frame(mem::FrameId frame) const {
  VCOP_CHECK_MSG(frame < frames_.size(), "frame id out of range");
  return frames_[frame];
}

FrameState& PageManager::MutableFrame(mem::FrameId frame) {
  VCOP_CHECK_MSG(frame < frames_.size(), "frame id out of range");
  return frames_[frame];
}

std::vector<bool> PageManager::EvictableMask() const {
  std::vector<bool> mask(frames_.size());
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    mask[f] = frames_[f].in_use && !frames_[f].pinned;
  }
  return mask;
}

std::vector<mem::FrameId> PageManager::InUseFrames() const {
  std::vector<mem::FrameId> out;
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    if (frames_[f].in_use) out.push_back(f);
  }
  return out;
}

std::vector<mem::FrameId> PageManager::InUseFramesOf(hw::Asid asid) const {
  std::vector<mem::FrameId> out;
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    if (frames_[f].in_use && frames_[f].asid == asid) out.push_back(f);
  }
  return out;
}

}  // namespace vcop::os
