#include "os/page_manager.h"

namespace vcop::os {

PageManager::PageManager(mem::PageGeometry geometry)
    : geometry_(geometry),
      frames_(geometry.num_frames()),
      generations_(geometry.num_frames(), 0) {}

void PageManager::Reset() {
  frames_.assign(frames_.size(), FrameState{});
  in_use_ = 0;
}

std::optional<mem::FrameId> PageManager::FindResident(
    hw::ObjectId object, mem::VirtPage vpage, hw::Asid asid) const {
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    const FrameState& s = frames_[f];
    if (s.in_use && !s.continuation && s.object == object &&
        s.vpage == vpage && s.asid == asid) {
      return f;
    }
  }
  return std::nullopt;
}

std::optional<mem::FrameId> PageManager::FindFree() const {
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    if (!frames_[f].in_use) return f;
  }
  return std::nullopt;
}

std::optional<mem::FrameId> PageManager::FindFreeRun(u32 span) const {
  VCOP_CHECK_MSG(span >= 1, "FindFreeRun needs span >= 1");
  if (span > frames_.size()) return std::nullopt;
  u32 run = 0;
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    run = frames_[f].in_use ? 0 : run + 1;
    if (run == span) return f + 1 - span;
  }
  return std::nullopt;
}

void PageManager::Install(mem::FrameId frame, hw::ObjectId object,
                          mem::VirtPage vpage, bool pinned, hw::Asid asid,
                          u32 span) {
  VCOP_CHECK_MSG(span >= 1, "Install needs span >= 1");
  VCOP_CHECK_MSG(static_cast<u64>(frame) + span <= frames_.size(),
                 "superpage run exceeds the frame array");
  for (u32 i = 0; i < span; ++i) {
    VCOP_CHECK_MSG(!frames_[frame + i].in_use,
                   "Install into an occupied frame");
  }
  VCOP_CHECK_MSG(!FindResident(object, vpage, asid).has_value(),
                 "page is already resident in another frame");
  FrameState next;
  next.in_use = true;
  next.pinned = pinned;
  next.pins = pinned ? 1 : 0;
  next.object = object;
  next.asid = asid;
  next.vpage = vpage;
  next.span = span;
  frames_[frame] = next;
  ++generations_[frame];
  for (u32 i = 1; i < span; ++i) {
    FrameState tail = next;
    tail.pins = 0;
    tail.span = 1;
    tail.continuation = true;
    tail.head = frame;
    frames_[frame + i] = tail;
    ++generations_[frame + i];
  }
  in_use_ += span;
}

FrameState PageManager::Release(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use, "Release of a free frame");
  VCOP_CHECK_MSG(!s.continuation, "Release of a superpage tail");
  const FrameState old = s;
  for (u32 i = 0; i < old.span; ++i) frames_[frame + i] = FrameState{};
  in_use_ -= old.span;
  return old;
}

void PageManager::MarkDirty(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use && !s.continuation, "MarkDirty on a free frame");
  s.dirty = true;
}

void PageManager::ClearDirty(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use && !s.continuation, "ClearDirty on a free frame");
  s.dirty = false;
}

void PageManager::MarkSpeculative(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use && !s.continuation,
                 "MarkSpeculative on a free frame");
  s.speculative = true;
}

void PageManager::ClearSpeculative(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use && !s.continuation,
                 "ClearSpeculative on a free frame");
  s.speculative = false;
}

u64 PageManager::generation(mem::FrameId frame) const {
  VCOP_CHECK_MSG(frame < generations_.size(), "frame id out of range");
  return generations_[frame];
}

void PageManager::Pin(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use && !s.continuation, "Pin on a free frame");
  ++s.pins;
  s.pinned = true;
}

void PageManager::Unpin(mem::FrameId frame) {
  FrameState& s = MutableFrame(frame);
  VCOP_CHECK_MSG(s.in_use && s.pins > 0,
                 "Unpin on a frame that is not pinned");
  if (--s.pins == 0) s.pinned = false;
}

const FrameState& PageManager::frame(mem::FrameId frame) const {
  VCOP_CHECK_MSG(frame < frames_.size(), "frame id out of range");
  return frames_[frame];
}

FrameState& PageManager::MutableFrame(mem::FrameId frame) {
  VCOP_CHECK_MSG(frame < frames_.size(), "frame id out of range");
  return frames_[frame];
}

std::vector<bool> PageManager::EvictableMask() const {
  // Superpage tails are excluded: eviction always targets the head,
  // which releases the whole run.
  std::vector<bool> mask(frames_.size());
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    mask[f] = frames_[f].in_use && !frames_[f].pinned &&
              !frames_[f].continuation;
  }
  return mask;
}

std::vector<mem::FrameId> PageManager::InUseFrames() const {
  std::vector<mem::FrameId> out;
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    if (frames_[f].in_use && !frames_[f].continuation) out.push_back(f);
  }
  return out;
}

std::vector<mem::FrameId> PageManager::InUseFramesOf(hw::Asid asid) const {
  std::vector<mem::FrameId> out;
  for (mem::FrameId f = 0; f < frames_.size(); ++f) {
    if (frames_[f].in_use && !frames_[f].continuation &&
        frames_[f].asid == asid) {
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace vcop::os
