// The simulated operating system kernel.
//
// Owns the whole modelled platform (simulator, memories, fabric, IMU,
// interrupt line, VIM, calling process) and exposes the paper's three
// system calls (§3.1):
//
//   FPGA_LOAD        — configure the PLD with a bit-stream; exclusive.
//   FPGA_MAP_OBJECT  — declare a user-space dataset as interface object.
//   FPGA_EXECUTE     — pass scalar parameters, start the coprocessor,
//                      sleep until completion; page faults are serviced
//                      transparently along the way.
//
// FpgaExecute runs the event simulation to completion internally and
// returns an ExecutionReport with the same time decomposition the paper
// plots: hardware time, dual-port-RAM management time, IMU management
// time (plus the invocation overhead, which the paper folds into its
// totals).
#pragma once

#include <array>
#include <memory>
#include <string>

#include "base/status.h"
#include "base/types.h"
#include "hw/fabric.h"
#include "hw/imu.h"
#include "hw/interrupt.h"
#include "hw/tlb.h"
#include "mem/dp_ram.h"
#include "mem/user_memory.h"
#include "os/address_space.h"
#include "os/calibration.h"
#include "os/process.h"
#include "os/timeline.h"
#include "os/vim.h"
#include "sim/simulator.h"

namespace vcop::os {

/// Platform defaults for the vcopd ring-transport service layer
/// (os/service.h): per-tenant ring sizing and token-bucket admission.
/// Parsed from the platform file (service_ring / service_rate /
/// service_burst) like every other knob; the service reads these as its
/// defaults and tenants may override rate/burst at attach time.
struct ServiceTuning {
  /// Entries per submission/completion ring (power of two in
  /// [2, 32768]).
  u32 ring_entries = 64;
  /// Token-bucket admission rate: jobs per simulated second drained
  /// from a tenant's submission ring (0 = unlimited).
  u64 admit_rate = 0;
  /// Token-bucket capacity: jobs a tenant may burst back-to-back after
  /// sitting idle.
  u32 admit_burst = 16;
};

/// Static description of the modelled platform. Presets for the
/// Excalibur family live in runtime/config.h.
struct KernelConfig {
  std::string platform_name = "EPXA1";
  /// Interface memory: EPXA1 has 16 KB of dual-port RAM, "logically
  /// organised in eight 2KB pages" (§4).
  u32 dp_ram_bytes = 16 * 1024;
  u32 page_bytes = 2 * 1024;
  /// Per-object page-size overrides in bytes, indexed by object id
  /// (0 = platform default `page_bytes`; must be a power of two in
  /// [mem::kMinObjectPageBytes, mem::kMaxObjectPageBytes]). Applied by
  /// FPGA_MAP_OBJECT; sizes above the frame granule are superpages.
  std::array<u32, hw::kMaxObjects> object_page_bytes{};
  /// IMU parameters (§3.2/§4).
  u32 tlb_entries = 8;
  /// Two-level TLB hierarchy (DESIGN.md §14). 0 = classic single
  /// shared CAM of `tlb_entries`. When l2_tlb_entries > 0 the shared
  /// TLB becomes a second-level cache of that many entries and every
  /// IMU owns a small first-level micro-TLB of l1_tlb_entries (falling
  /// back to tlb_entries when l1_tlb_entries is 0).
  u32 l1_tlb_entries = 0;
  u32 l2_tlb_entries = 0;
  u32 imu_access_latency = 4;
  bool imu_pipelined = false;
  /// Enable the IMU's per-object limit registers (extension; catches
  /// within-page overruns the paper's design cannot).
  bool imu_bounds_check = false;
  /// Enable the IMU's posted-write buffer (extension; acknowledges
  /// writes early and retires them in the background).
  bool imu_posted_writes = false;
  /// Process address space modelled (the board has 64 MB SDRAM; 16 MB
  /// is ample for every experiment).
  u32 user_memory_bytes = 16 * 1024 * 1024;
  /// PLD size (EPXA1: 4160 logic elements) and configuration rate.
  u32 pld_capacity_les = 4160;
  u64 config_bytes_per_second = 4 * 1024 * 1024;
  /// Partial-reconfiguration regions in the configuration cache
  /// (hw::FpgaFabric::AcquireDesign). 1 = the classic model: every
  /// design alternation pays the full configuration-port transfer.
  u32 config_slots = 1;
  /// vcopd fair share: prefer runnable tenants whose design is already
  /// resident in a configuration slot (bounded by the affinity-skip
  /// budget so DRR fairness holds). Off = strict ring order.
  bool design_affinity = false;
  CostModel costs{};
  VimConfig vim{};
  /// Host-side event-kernel tuning. Every combination produces
  /// bit-identical ExecutionReports; the defaults are the fast engine,
  /// all-false is the event-per-edge reference engine.
  sim::SimTuning sim_tuning{};
  /// Host-side optimisation: the IMU remembers its last translation and
  /// skips the CAM scan while the TLB is unchanged (same reports).
  bool imu_translation_cache = true;
  /// Ring-transport service defaults (os/service.h).
  ServiceTuning service{};
};

/// What FPGA_EXECUTE measures, in the paper's decomposition.
struct ExecutionReport {
  Picoseconds total = 0;     // wall time of the blocking call
  Picoseconds t_hw = 0;      // coprocessor + IMU (incl. translation)
  Picoseconds t_dp = 0;      // OS transfers user <-> dual-port RAM
  Picoseconds t_imu = 0;     // OS fault decode + translation updates
  Picoseconds t_invoke = 0;  // syscall + execute setup + param passing
  VimAccounting vim;
  hw::ImuStats imu;
  hw::TlbStats tlb;
  u64 cp_cycles = 0;  // rising edges consumed by the coprocessor core
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ----- the three OS services of §3.1 -----

  /// Loads a coprocessor bit-stream; fails if one is already loaded
  /// (the PLD is an exclusive resource). Simulated time advances by the
  /// configuration duration.
  Status FpgaLoad(const hw::Bitstream& bitstream);

  /// Declares a mapped object (parameter-passing by reference, §3.1).
  Status FpgaMapObject(hw::ObjectId id, mem::UserAddr addr, u32 size_bytes,
                       u32 elem_width, Direction direction);

  /// Removes an object mapping.
  Status FpgaUnmapObject(hw::ObjectId id);

  /// Runs the loaded coprocessor to completion with `params` passed
  /// through the parameter page. Blocking (the process sleeps).
  Result<ExecutionReport> FpgaExecute(std::span<const u32> params);

  /// Releases the PLD.
  Status FpgaUnload();

  // ----- platform access for applications and tests -----
  mem::UserMemory& user_memory() { return user_memory_; }
  mem::DualPortRam& dp_ram() { return dp_ram_; }
  sim::Simulator& simulator() { return sim_; }
  Vim& vim() { return vim_; }
  Process& process() { return default_space_.process(); }
  hw::FpgaFabric& fabric() { return fabric_; }
  hw::Imu* imu() { return imu_.get(); }
  hw::InterruptLine& irq() { return irq_; }
  /// The single interface TLB shared by every IMU instantiated on this
  /// platform (ASID-tagged; see os/vcopd.h).
  hw::Tlb& shared_tlb() { return shared_tlb_; }
  /// The kernel's own address space (ASID 0), used by the blocking
  /// single-tenant system calls.
  AddressSpace& default_space() { return default_space_; }
  const KernelConfig& config() const { return config_; }

  /// Configuration time of the most recent FPGA_LOAD.
  Picoseconds last_load_time() const { return last_load_time_; }

  // ----- fault injection (base/fault.h) -----

  /// Installs `plan` across every model on the platform (bus, interrupt
  /// line, shared TLB, fabric, VIM, the current IMU and any IMU created
  /// by a later FPGA_LOAD). Pass nullptr to remove it. The plan is not
  /// owned and must outlive the kernel or the next InstallFaultPlan.
  /// With no plan installed — or an empty one — every code path is
  /// bit-identical to the fault-free engine.
  void InstallFaultPlan(FaultPlan* plan);
  FaultPlan* fault_plan() { return fault_plan_; }

  /// Event timeline across all calls (Chrome-trace exportable).
  TimelineRecorder& timeline() { return timeline_; }

 private:
  KernelConfig config_;
  sim::Simulator sim_;
  mem::UserMemory user_memory_;
  mem::DualPortRam dp_ram_;
  hw::InterruptLine irq_;
  hw::FpgaFabric fabric_;
  hw::Tlb shared_tlb_;
  Vim vim_;
  AddressSpace default_space_;

  TimelineRecorder timeline_;
  std::unique_ptr<hw::Imu> imu_;
  sim::ClockDomain* imu_domain_ = nullptr;
  sim::ClockDomain* cp_domain_ = nullptr;
  u32 load_count_ = 0;
  Picoseconds last_load_time_ = 0;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace vcop::os
