// Page replacement policies for the interface memory.
//
// "When no page is available for allocation, several replacement
// policies are possible (e.g., first-in first-out, least recently used,
// random)." (§3.3) All three are implemented, driven by the information
// a real VIM would have: installation order, the TLB's accessed bits
// (harvested at every fault), and nothing else.
#pragma once

#include <memory>
#include <vector>
#include <string_view>

#include "base/rng.h"
#include "base/status.h"
#include "base/types.h"
#include "hw/tlb.h"
#include "mem/page.h"

namespace vcop::os {

enum class PolicyKind : u8 { kFifo, kLru, kRandom };

std::string_view ToString(PolicyKind kind);

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual std::string_view name() const = 0;

  /// Forgets all history; called at each FPGA_EXECUTE.
  virtual void Reset(u32 num_frames) = 0;

  /// A page was installed into `frame`.
  virtual void OnInstalled(mem::FrameId frame) = 0;

  /// Same event with the page identity — only policies that reason
  /// about *which* page sits in a frame (the Belady oracle) need it.
  virtual void OnInstalledAt(mem::FrameId frame, hw::ObjectId object,
                             mem::VirtPage vpage) {
    (void)frame;
    (void)object;
    (void)vpage;
  }

  /// The coprocessor was observed touching `frame` since the last
  /// harvest (from the TLB accessed bits).
  virtual void OnTouched(mem::FrameId frame) = 0;

  /// `frame` was freed (its page evicted or released).
  virtual void OnFreed(mem::FrameId frame) = 0;

  /// Chooses a victim among frames with `evictable[frame]` true.
  /// Precondition: at least one frame is evictable.
  virtual mem::FrameId PickVictim(const std::vector<bool>& evictable) = 0;
};

/// Factory. `seed` is used by the random policy only.
std::unique_ptr<ReplacementPolicy> MakePolicy(PolicyKind kind, u64 seed);

}  // namespace vcop::os
