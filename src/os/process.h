// A minimal model of the calling user process.
//
// FPGA_EXECUTE "puts the calling process in an interruptible sleep
// mode" (§3.1); the process sleeps for the whole coprocessor run and is
// woken by the end-of-operation service. Process tracks that lifecycle
// so tests can assert the paper's blocking semantics.
#pragma once

#include <string>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::os {

enum class ProcessState : u8 { kRunning, kSleeping };

class Process {
 public:
  explicit Process(u32 pid) : pid_(pid) {}

  u32 pid() const { return pid_; }
  ProcessState state() const { return state_; }
  bool sleeping() const { return state_ == ProcessState::kSleeping; }

  /// Enters interruptible sleep (at FPGA_EXECUTE).
  void Sleep(Picoseconds now) {
    VCOP_CHECK_MSG(state_ == ProcessState::kRunning, "double sleep");
    state_ = ProcessState::kSleeping;
    slept_at_ = now;
  }

  /// Wakes the process (end-of-operation or abort).
  void Wake(Picoseconds now) {
    VCOP_CHECK_MSG(state_ == ProcessState::kSleeping, "wake while running");
    state_ = ProcessState::kRunning;
    total_slept_ += now - slept_at_;
    ++wakeups_;
  }

  /// Cumulative time spent blocked in FPGA_EXECUTE.
  Picoseconds total_slept() const { return total_slept_; }
  u64 wakeups() const { return wakeups_; }

  /// vcopd accounting: the dispatcher notes every time slice it grants
  /// this process (initial dispatch and each resume after preemption).
  void NoteSlice() { ++slices_run_; }
  u64 slices_run() const { return slices_run_; }

 private:
  u32 pid_;
  ProcessState state_ = ProcessState::kRunning;
  Picoseconds slept_at_ = 0;
  Picoseconds total_slept_ = 0;
  u64 wakeups_ = 0;
  u64 slices_run_ = 0;
};

}  // namespace vcop::os
