#include "os/policy.h"

#include <algorithm>
#include <vector>

namespace vcop::os {

std::string_view ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kRandom: return "random";
  }
  return "?";
}

namespace {

/// FIFO: evict the page installed the longest ago, regardless of use.
class FifoPolicy final : public ReplacementPolicy {
 public:
  std::string_view name() const override { return "fifo"; }

  void Reset(u32 num_frames) override {
    install_seq_.assign(num_frames, 0);
    clock_ = 0;
  }

  void OnInstalled(mem::FrameId frame) override {
    install_seq_[frame] = ++clock_;
  }

  void OnTouched(mem::FrameId) override {}
  void OnFreed(mem::FrameId frame) override { install_seq_[frame] = 0; }

  mem::FrameId PickVictim(const std::vector<bool>& evictable) override {
    mem::FrameId best = 0;
    u64 best_seq = ~u64{0};
    bool found = false;
    for (mem::FrameId f = 0; f < evictable.size(); ++f) {
      if (!evictable[f]) continue;
      if (!found || install_seq_[f] < best_seq) {
        best = f;
        best_seq = install_seq_[f];
        found = true;
      }
    }
    VCOP_CHECK_MSG(found, "PickVictim with nothing evictable");
    return best;
  }

 private:
  std::vector<u64> install_seq_;
  u64 clock_ = 0;
};

/// LRU over the recency the OS can actually observe: TLB accessed bits
/// harvested at faults (OnTouched) plus installation time.
class LruPolicy final : public ReplacementPolicy {
 public:
  std::string_view name() const override { return "lru"; }

  void Reset(u32 num_frames) override {
    last_use_.assign(num_frames, 0);
    clock_ = 0;
  }

  void OnInstalled(mem::FrameId frame) override { last_use_[frame] = ++clock_; }
  void OnTouched(mem::FrameId frame) override { last_use_[frame] = ++clock_; }
  void OnFreed(mem::FrameId frame) override { last_use_[frame] = 0; }

  mem::FrameId PickVictim(const std::vector<bool>& evictable) override {
    mem::FrameId best = 0;
    u64 best_use = ~u64{0};
    bool found = false;
    for (mem::FrameId f = 0; f < evictable.size(); ++f) {
      if (!evictable[f]) continue;
      if (!found || last_use_[f] < best_use) {
        best = f;
        best_use = last_use_[f];
        found = true;
      }
    }
    VCOP_CHECK_MSG(found, "PickVictim with nothing evictable");
    return best;
  }

 private:
  std::vector<u64> last_use_;
  u64 clock_ = 0;
};

/// Uniformly random among evictable frames (deterministic in the seed).
class RandomPolicy final : public ReplacementPolicy {
 public:
  explicit RandomPolicy(u64 seed) : rng_(seed) {}

  std::string_view name() const override { return "random"; }
  void Reset(u32) override {}
  void OnInstalled(mem::FrameId) override {}
  void OnTouched(mem::FrameId) override {}
  void OnFreed(mem::FrameId) override {}

  mem::FrameId PickVictim(const std::vector<bool>& evictable) override {
    std::vector<mem::FrameId> candidates;
    for (mem::FrameId f = 0; f < evictable.size(); ++f) {
      if (evictable[f]) candidates.push_back(f);
    }
    VCOP_CHECK_MSG(!candidates.empty(), "PickVictim with nothing evictable");
    return candidates[rng_.NextBelow(candidates.size())];
  }

 private:
  Rng rng_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> MakePolicy(PolicyKind kind, u64 seed) {
  switch (kind) {
    case PolicyKind::kFifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::kLru: return std::make_unique<LruPolicy>();
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>(seed);
  }
  VCOP_CHECK(false);
  return nullptr;
}

}  // namespace vcop::os
