// The VIM's table of mapped interface objects.
//
// FPGA_MAP_OBJECT "allocates the data used by the coprocessor. The
// arguments of the call are: (a) the object identifier (a number agreed
// by the hardware and software designers), (b) a pointer to the data,
// (c) the data size, and optionally (d) some flags used for optimisation
// purposes." (§3.1)
//
// The flags here carry the transfer-direction hint (an IN page need not
// be written back; an OUT page need not be loaded on its first fault)
// and the element width the hardware designer built the coprocessor
// around.
#pragma once

#include <array>
#include <optional>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "hw/tlb.h"
#include "mem/user_memory.h"

namespace vcop::os {

/// Transfer-direction optimisation hint (§3.1's "flags").
enum class Direction : u8 {
  kIn,     // coprocessor reads only: load on fault, never write back
  kOut,    // coprocessor writes only: no load on fault, write back dirty
  kInOut,  // both: load on fault and write back dirty
};

std::string_view ToString(Direction d);

struct MappedObject {
  hw::ObjectId id = 0;
  mem::UserAddr user_addr = 0;
  u32 size_bytes = 0;
  u32 elem_width = 4;  // 1, 2 or 4 — the object's natural element size
  Direction direction = Direction::kInOut;
  /// Per-object page size override in bytes; 0 = platform default.
  /// Must be a power of two in [mem::kMinObjectPageBytes,
  /// mem::kMaxObjectPageBytes]. (That it is also >= the platform frame
  /// granule is checked at PrepareExecution, where the geometry is
  /// known.) Sizes above the granule are superpages spanning several
  /// contiguous DP-RAM frames.
  u32 page_bytes = 0;
};

class ObjectTable {
 public:
  /// Registers `object`. Fails on duplicate id, a reserved id
  /// (kParamObject), zero size, or an element width that is not
  /// 1/2/4 or does not divide the size.
  Status Map(const MappedObject& object);

  /// Removes a mapping (used between EXECUTE calls when the
  /// application re-points an object).
  Status Unmap(hw::ObjectId id);

  /// Re-points an existing mapping at a new user virtual address,
  /// keeping size/width/direction. The zero-copy ring path uses this:
  /// a descriptor's object_refs carry (id, user VA) pairs, so a tenant
  /// can retarget an object per submission without a map/unmap churn.
  Status Repoint(hw::ObjectId id, mem::UserAddr addr);

  /// Clears all mappings.
  void Clear();

  const MappedObject* Find(hw::ObjectId id) const;

  /// All currently mapped objects, in id order.
  std::vector<MappedObject> All() const;

  usize size() const { return count_; }

 private:
  std::array<std::optional<MappedObject>, hw::kMaxObjects> slots_{};
  usize count_ = 0;
};

}  // namespace vcop::os
