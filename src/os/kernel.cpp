#include "os/kernel.h"

#include "base/table.h"

namespace vcop::os {

Kernel::Kernel(const KernelConfig& config)
    : config_(config),
      user_memory_(config.user_memory_bytes),
      dp_ram_(config.dp_ram_bytes),
      fabric_(config.pld_capacity_les, config.config_bytes_per_second),
      shared_tlb_(config.l2_tlb_entries > 0 ? config.l2_tlb_entries
                                            : config.tlb_entries),
      vim_(config.costs,
           mem::PageGeometry(config.page_bytes,
                             config.dp_ram_bytes / config.page_bytes),
           dp_ram_, user_memory_, sim_),
      default_space_(/*pid=*/1, /*asid=*/0) {
  VCOP_CHECK_MSG(config.dp_ram_bytes % config.page_bytes == 0,
                 "dual-port RAM size must be a whole number of pages");
  sim_.set_tuning(config.sim_tuning);
  if (config.config_slots != 1) fabric_.SetConfigSlots(config.config_slots);
  vim_.Configure(config.vim);
  vim_.AttachSpace(&default_space_);
  vim_.set_timeline(&timeline_);
  irq_.set_handler([this](hw::InterruptCause cause) {
    switch (cause) {
      case hw::InterruptCause::kPageFault:
        vim_.OnPageFault();
        break;
      case hw::InterruptCause::kEndOfOperation:
        vim_.OnEndOfOperation();
        break;
    }
  });
  // Recovery wiring. Both hooks are inert without an installed fault
  // plan: parity bits only flip under kTlbParity, and the progress
  // probe is consulted only by the (plan-gated) watchdog.
  shared_tlb_.set_parity_drop_hook(
      [this](const hw::TlbEntry& dropped) { vim_.OnTlbParityDrop(dropped); });
  vim_.set_progress_probe([this]() -> u64 {
    return fabric_.coprocessor() ? fabric_.coprocessor()->cycles_run() : 0;
  });
}

void Kernel::InstallFaultPlan(FaultPlan* plan) {
  fault_plan_ = plan;
  irq_.set_fault_plan(plan);
  fabric_.set_fault_plan(plan);
  shared_tlb_.set_fault_plan(plan);
  vim_.InstallFaultPlan(plan);
  if (imu_) {
    imu_->set_fault_plan(plan);
    imu_->tlb().set_fault_plan(plan);
  }
}

Status Kernel::FpgaLoad(const hw::Bitstream& bitstream) {
  Result<Picoseconds> configured = fabric_.Configure(bitstream);
  if (!configured.ok()) return configured.status();
  last_load_time_ = configured.value();

  // Fresh IMU wired for this design's clocks. The IMU's clock domain is
  // created before the coprocessor's so that, on coincident edges, the
  // translation pipeline advances before the core samples CP_TLBHIT.
  ++load_count_;
  hw::ImuConfig imu_config;
  imu_config.access_latency_cycles = config_.imu_access_latency;
  imu_config.pipelined = config_.imu_pipelined;
  if (config_.l2_tlb_entries > 0) {
    imu_config.tlb_entries = config_.l1_tlb_entries > 0
                                 ? config_.l1_tlb_entries
                                 : config_.tlb_entries;
    imu_config.shared_tlb_is_l2 = true;
  } else {
    imu_config.tlb_entries = config_.tlb_entries;
  }
  imu_config.bounds_check = config_.imu_bounds_check;
  imu_config.posted_writes = config_.imu_posted_writes;
  imu_config.translation_cache = config_.imu_translation_cache;
  shared_tlb_.InvalidateAll();
  shared_tlb_.ResetStats();
  imu_ = std::make_unique<hw::Imu>(
      imu_config,
      mem::PageGeometry(config_.page_bytes,
                        config_.dp_ram_bytes / config_.page_bytes),
      dp_ram_, irq_, sim_, &shared_tlb_);

  imu_domain_ = &sim_.AddClockDomain(
      StrFormat("imu%u@%s", load_count_,
                bitstream.imu_clock.ToString().c_str()),
      bitstream.imu_clock);
  cp_domain_ = &sim_.AddClockDomain(
      StrFormat("cp%u@%s", load_count_,
                bitstream.cp_clock.ToString().c_str()),
      bitstream.cp_clock);
  imu_->set_fault_plan(fault_plan_);
  // The IMU's first-level TLB takes the same fault plan and parity
  // recovery as the shared one. In single-level mode tlb() IS
  // shared_tlb_, so this re-installs identical wiring.
  imu_->tlb().set_fault_plan(fault_plan_);
  imu_->tlb().set_parity_drop_hook(
      [this](const hw::TlbEntry& dropped) { vim_.OnTlbParityDrop(dropped); });
  imu_->BindClocks(*imu_domain_, *cp_domain_);
  imu_domain_->Attach(*imu_);
  cp_domain_->Attach(*fabric_.coprocessor());
  fabric_.coprocessor()->BindPort(*imu_);
  vim_.BindImu(imu_.get());

  // Configuration takes real time on the configuration port.
  timeline_.Record(StrFormat("configure %s", bitstream.name.c_str()),
                   "config", sim_.now(), last_load_time_, /*track=*/0);
  sim_.ScheduleAfter(last_load_time_, [] {});
  sim_.RunToIdle();
  return Status::Ok();
}

Status Kernel::FpgaMapObject(hw::ObjectId id, mem::UserAddr addr,
                             u32 size_bytes, u32 elem_width,
                             Direction direction) {
  if (!user_memory_.Contains(addr, size_bytes)) {
    return InvalidArgumentError(StrFormat(
        "object %u: [%u, +%u) is not in the process address space", id,
        addr, size_bytes));
  }
  MappedObject object;
  object.id = id;
  object.user_addr = addr;
  object.size_bytes = size_bytes;
  object.elem_width = elem_width;
  object.direction = direction;
  if (id < hw::kMaxObjects) {
    object.page_bytes = config_.object_page_bytes[id];
  }
  return vim_.objects().Map(object);
}

Status Kernel::FpgaUnmapObject(hw::ObjectId id) {
  return vim_.objects().Unmap(id);
}

Result<ExecutionReport> Kernel::FpgaExecute(std::span<const u32> params) {
  if (!fabric_.loaded()) {
    return FailedPreconditionError("FPGA_EXECUTE with no design loaded");
  }
  Result<Picoseconds> setup = vim_.PrepareExecution(params);
  if (!setup.ok()) return setup.status();

  const Picoseconds t0 = sim_.now();
  bool done = false;
  Status failure = Status::Ok();
  vim_.set_completion_handler([&done] { done = true; });
  vim_.set_abort_handler([this, &done, &failure](Status status) {
    failure = std::move(status);
    fabric_.coprocessor()->Abort();
    done = true;
  });

  default_space_.process().Sleep(t0);
  const usize num_params = params.size();
  sim_.ScheduleAt(t0 + setup.value(), [this, num_params] {
    imu_->AssertStart();
    fabric_.coprocessor()->Start(static_cast<u32>(num_params));
    cp_domain_->Kick();
  });

  const bool converged = sim_.RunUntil([&done] { return done; });
  default_space_.process().Wake(sim_.now());
  vim_.set_completion_handler(nullptr);
  vim_.set_abort_handler(nullptr);
  if (!converged) {
    return UnavailableError(
        "coprocessor did not complete (simulation went idle or exceeded "
        "its event budget) — FSM deadlock?");
  }
  if (!failure.ok()) return failure;

  ExecutionReport report;
  report.total = sim_.now() - t0;
  report.t_invoke = setup.value() + vim_.accounting().t_wakeup;
  report.t_dp = vim_.accounting().t_dp;
  report.t_imu = vim_.accounting().t_imu;
  VCOP_CHECK_MSG(report.total >=
                     report.t_invoke + report.t_dp + report.t_imu,
                 "OS time exceeds wall time");
  report.t_hw = report.total - report.t_invoke - report.t_dp - report.t_imu;
  report.vim = vim_.accounting();
  report.imu = imu_->stats();
  report.tlb = imu_->tlb().stats();
  report.cp_cycles = fabric_.coprocessor()->cycles_run();
  timeline_.Record(
      StrFormat("execute %s", fabric_.current_bitstream().name.c_str()),
      "exec", t0, report.total, /*track=*/1);
  return report;
}

Status Kernel::FpgaUnload() {
  if (!fabric_.loaded()) {
    return FailedPreconditionError("FPGA_UNLOAD with no design loaded");
  }
  vim_.BindImu(nullptr);
  fabric_.Release();
  imu_.reset();
  return Status::Ok();
}

}  // namespace vcop::os
