// Belady's optimal replacement, as an offline oracle.
//
// §3.3 names FIFO/LRU/random as candidate policies; the interesting
// question for the ablation is how much headroom any online policy
// leaves. Belady's MIN answers it but needs the future: we obtain it by
// running the workload twice. Pass 1 records the coprocessor's page
// reference string through the IMU's access probe (the stream is a
// function of the program, not of the paging decisions, so it is
// identical across passes). Pass 2 replays with OraclePolicy, which
// evicts the page whose next use lies farthest in the future.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "hw/tlb.h"
#include "mem/page.h"
#include "os/policy.h"

namespace vcop::os {

/// One page reference: which (object, virtual page) an access touched.
struct PageRef {
  hw::ObjectId object;
  mem::VirtPage vpage;
};

/// The recorded reference string of one execution.
using PageRefTrace = std::vector<PageRef>;

/// Belady's MIN over a recorded trace. Advance the cursor by feeding it
/// every access via OnReference (wire the IMU's access probe to both
/// the recorder in pass 1 and this method in pass 2).
class OraclePolicy final : public ReplacementPolicy {
 public:
  explicit OraclePolicy(std::shared_ptr<const PageRefTrace> trace);

  /// Called once per coprocessor access, in program order.
  void OnReference(hw::ObjectId object, mem::VirtPage vpage);

  // ReplacementPolicy:
  std::string_view name() const override { return "belady"; }
  void Reset(u32 num_frames) override;
  void OnInstalled(mem::FrameId frame) override { (void)frame; }
  void OnInstalledAt(mem::FrameId frame, hw::ObjectId object,
                     mem::VirtPage vpage) override;
  void OnTouched(mem::FrameId frame) override { (void)frame; }
  void OnFreed(mem::FrameId frame) override;
  mem::FrameId PickVictim(const std::vector<bool>& evictable) override;

  u64 references_seen() const { return cursor_; }

 private:
  using PageKey = std::pair<hw::ObjectId, mem::VirtPage>;

  /// Position of the first use of `page` at or after the cursor;
  /// ~0 when the page is never referenced again.
  u64 NextUse(const PageKey& page) const;

  std::shared_ptr<const PageRefTrace> trace_;
  std::map<PageKey, std::vector<u64>> positions_;
  std::vector<std::pair<bool, PageKey>> frame_page_;
  u64 cursor_ = 0;
};

}  // namespace vcop::os
