#include "os/vcopd.h"

#include <algorithm>

#include "base/log.h"
#include "base/table.h"

namespace vcop::os {

std::string_view ToString(ServicePolicy policy) {
  switch (policy) {
    case ServicePolicy::kFairShare: return "fair-share";
    case ServicePolicy::kFifoBatch: return "fifo-batch";
  }
  return "?";
}

Vcopd::Vcopd(Kernel& kernel, VcopdConfig config)
    : kernel_(kernel),
      config_(config),
      asids_(std::max<u32>(
          2, std::min<u32>(config.max_asids, 65536))) {
  if (kernel.config().design_affinity) config_.design_affinity = true;
  Vim& vim = kernel_.vim();
  vim.set_tlb_tagging(config_.asid_tagging);
  vim.set_space_resolver([this](hw::Asid asid) { return FindSpace(asid); });
  // ASID generation rollover: when the allocator's cursor wraps past
  // the top of the tag space, a recycled tag could alias stale shared-
  // TLB entries installed under its previous owner. Flush everything.
  asids_.set_rollover_hook([this] { kernel_.shared_tlb().InvalidateAll(); });
}

Vcopd::~Vcopd() {
  Vim& vim = kernel_.vim();
  vim.set_space_resolver(nullptr);
  vim.set_preempt_check(nullptr);
  vim.set_preempt_handler(nullptr);
  vim.set_tlb_tagging(true);
  RestoreKernelBinding();
}

Result<TenantId> Vcopd::RegisterTenant(std::string name, u32 weight) {
  if (weight == 0) {
    return InvalidArgumentError("tenant weight must be >= 1");
  }
  Result<hw::Asid> asid = asids_.Allocate();
  if (!asid.ok()) return asid.status();

  auto tenant = std::make_unique<Tenant>();
  tenant->id = static_cast<TenantId>(tenants_.size()) + 1;
  tenant->weight = weight;
  tenant->space = std::make_unique<AddressSpace>(next_pid_++, asid.value(),
                                                 std::move(name));
  tenants_.push_back(std::move(tenant));
  return tenants_.back()->id;
}

Status Vcopd::UnregisterTenant(TenantId tenant) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return NotFoundError(StrFormat("unknown tenant %u", tenant));
  }
  if (t->inflight != nullptr || !t->queue.empty()) {
    return FailedPreconditionError(StrFormat(
        "tenant %u has queued or in-flight work", tenant));
  }
  // A clean tenant holds no frames (the scoped end-of-operation sweep
  // released them); scrub any surviving TLB entries before the tag can
  // be recycled.
  kernel_.shared_tlb().InvalidateAsid(t->space->asid());
  asids_.Release(t->space->asid());
  t->active = false;
  if (current_ == t) current_ = nullptr;
  return Status::Ok();
}

Status Vcopd::MapObject(TenantId tenant, hw::ObjectId id,
                        mem::UserAddr addr, u32 size_bytes, u32 elem_width,
                        Direction direction) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return NotFoundError(StrFormat("unknown tenant %u", tenant));
  }
  if (!kernel_.user_memory().Contains(addr, size_bytes)) {
    return InvalidArgumentError(StrFormat(
        "object %u: [%u, +%u) is not in the process address space", id,
        addr, size_bytes));
  }
  MappedObject object;
  object.id = id;
  object.user_addr = addr;
  object.size_bytes = size_bytes;
  object.elem_width = elem_width;
  object.direction = direction;
  return t->space->objects().Map(object);
}

Status Vcopd::UnmapObject(TenantId tenant, hw::ObjectId id) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return NotFoundError(StrFormat("unknown tenant %u", tenant));
  }
  return t->space->objects().Unmap(id);
}

Status Vcopd::RepointObject(TenantId tenant, hw::ObjectId id,
                            mem::UserAddr addr) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return NotFoundError(StrFormat("unknown tenant %u", tenant));
  }
  const MappedObject* object = t->space->objects().Find(id);
  if (object == nullptr) {
    return NotFoundError(
        StrFormat("tenant %u has no object %u to re-point", tenant, id));
  }
  if (!kernel_.user_memory().Contains(addr, object->size_bytes)) {
    return InvalidArgumentError(StrFormat(
        "object %u: [%u, +%u) is not in the process address space", id,
        addr, object->size_bytes));
  }
  const Status s = t->space->objects().Repoint(id, addr);
  if (s.ok() && kernel_.vim().config().iommu) {
    // The virtual range the object names just moved: cached DMA
    // translations for this tenant may now point at the wrong pages.
    kernel_.vim().iommu().InvalidateAsid(t->space->asid());
  }
  return s;
}

Result<Ticket> Vcopd::Submit(
    TenantId tenant, const hw::Bitstream& bitstream,
    std::span<const u32> params,
    std::function<void(const JobResult&)> on_complete) {
  Tenant* t = FindTenant(tenant);
  if (t == nullptr) {
    return NotFoundError(StrFormat("unknown tenant %u", tenant));
  }
  if (t->quarantined) {
    return FailedPreconditionError(StrFormat(
        "tenant %u is quarantined after a fault-budget or hang abort",
        tenant));
  }
  // Admission control: validate what can be validated without running.
  const Result<Picoseconds> price =
      kernel_.fabric().PriceConfigure(bitstream);
  if (!price.ok()) return price.status();
  if (params.size() * 4 > kernel_.config().page_bytes) {
    return InvalidArgumentError(StrFormat(
        "%zu parameters exceed the parameter page (%u bytes)",
        params.size(), kernel_.config().page_bytes));
  }
  if (t->queue.size() >= config_.queue_depth) {
    ++stats_.rejected;
    return ResourceExhaustedError(StrFormat(
        "tenant %u submission queue is full (%u jobs) — back off and "
        "resubmit",
        tenant, config_.queue_depth));
  }

  auto job = std::make_unique<Job>();
  job->ticket = ++next_ticket_;
  job->tenant = tenant;
  job->bitstream = bitstream;
  job->params.assign(params.begin(), params.end());
  job->on_complete = std::move(on_complete);
  job->result.ticket = job->ticket;
  job->result.tenant = tenant;
  job->result.bitstream = bitstream.name;
  job->result.submitted_at = kernel_.simulator().now();
  t->queue.push_back(job.get());
  jobs_.push_back(std::move(job));
  ++stats_.submitted;
  return jobs_.back()->ticket;
}

const JobResult* Vcopd::Poll(Ticket ticket) const {
  const Job* job = FindJob(ticket);
  if (job == nullptr) return nullptr;
  if (job->state != VcopdJobState::kDone &&
      job->state != VcopdJobState::kFailed) {
    return nullptr;
  }
  return &job->result;
}

Result<JobResult> Vcopd::Wait(Ticket ticket) {
  Job* job = FindJob(ticket);
  if (job == nullptr) {
    return NotFoundError(StrFormat(
        "unknown ticket %llu", static_cast<unsigned long long>(ticket)));
  }
  while (job->state != VcopdJobState::kDone &&
         job->state != VcopdJobState::kFailed) {
    Tenant* next = PickNext();
    VCOP_CHECK_MSG(next != nullptr,
                   "ticket pending but no tenant is runnable");
    const Status status = RunSlice(*next);
    if (!status.ok()) return status;
  }
  RestoreKernelBinding();
  return job->result;
}

bool Vcopd::HasWork() const {
  for (const std::unique_ptr<Tenant>& t : tenants_) {
    if (t->active && Runnable(*t)) return true;
  }
  return false;
}

Status Vcopd::RunOne() {
  Tenant* next = PickNext();
  if (next == nullptr) return Status::Ok();
  return RunSlice(*next);
}

bool Vcopd::TenantQuarantined(TenantId tenant) const {
  if (tenant == 0 || tenant > tenants_.size()) return false;
  const Tenant& t = *tenants_[tenant - 1];
  return t.active && t.quarantined;
}

Status Vcopd::RunUntilIdle() {
  while (Tenant* next = PickNext()) {
    const Status status = RunSlice(*next);
    if (!status.ok()) return status;
  }
  RestoreKernelBinding();
  return Status::Ok();
}

AddressSpace* Vcopd::FindSpace(hw::Asid asid) {
  if (asid == 0) return &kernel_.default_space();
  for (const std::unique_ptr<Tenant>& t : tenants_) {
    if (t->active && t->space->asid() == asid) return t->space.get();
  }
  return nullptr;
}

ScheduleReport Vcopd::BuildScheduleReport() const {
  ScheduleReport report;
  Picoseconds first_submit = 0;
  Picoseconds last_finish = 0;
  bool any = false;
  for (const std::unique_ptr<Job>& job : jobs_) {
    if (job->state != VcopdJobState::kDone &&
        job->state != VcopdJobState::kFailed) {
      continue;
    }
    const JobResult& r = job->result;
    JobOutcome outcome;
    outcome.pid = tenants_[job->tenant - 1]->space->pid();
    outcome.bitstream = r.bitstream;
    outcome.status = r.status;
    outcome.submitted_at = r.submitted_at;
    outcome.started_at = r.started_at;
    outcome.finished_at = r.finished_at;
    outcome.reconfigurations = r.reconfigurations;
    outcome.slot_activations = r.slot_activations;
    outcome.config_time = r.config_time;
    outcome.preemptions = r.preemptions;
    outcome.report = r.report;
    if (!any || r.submitted_at < first_submit) first_submit = r.submitted_at;
    last_finish = std::max(last_finish, r.finished_at);
    any = true;
    report.outcomes.push_back(std::move(outcome));
  }
  if (any) report.makespan = last_finish - first_submit;
  report.reconfigurations = static_cast<u32>(stats_.reconfigurations);
  report.slot_activations = static_cast<u32>(stats_.slot_activations);
  report.total_config_time = stats_.total_config_time;
  report.total_activation_time = stats_.total_activation_time;
  const VimServiceStats& svc = kernel_.vim().service_stats();
  report.transfer_retries = svc.transfer_retries;
  report.watchdog_recoveries = svc.watchdog_recoveries;
  report.quarantines = stats_.quarantined;
  report.prefetch_issued = svc.prefetch_issued;
  report.prefetch_useful = svc.prefetch_useful;
  report.prefetch_wasted = svc.prefetch_wasted;
  report.victim_tlb_hits = svc.victim_tlb_hits;
  report.coalesced_bursts = svc.coalesced_bursts;
  report.coalesced_pages = svc.coalesced_pages;
  return report;
}

Vcopd::Tenant* Vcopd::FindTenant(TenantId id) {
  if (id == 0 || id > tenants_.size()) return nullptr;
  Tenant* t = tenants_[id - 1].get();
  return t->active ? t : nullptr;
}

Vcopd::Job* Vcopd::FindJob(Ticket ticket) const {
  if (ticket == 0 || ticket > jobs_.size()) return nullptr;
  return jobs_[ticket - 1].get();
}

bool Vcopd::Runnable(const Tenant& tenant) const {
  return tenant.inflight != nullptr || !tenant.queue.empty();
}

bool Vcopd::AnyOtherRunnable(const Tenant* current) const {
  for (const std::unique_ptr<Tenant>& t : tenants_) {
    if (t.get() == current || !t->active) continue;
    if (Runnable(*t)) return true;
  }
  return false;
}

const std::string& Vcopd::HeadDesign(const Tenant& tenant) {
  const Job* head = tenant.inflight != nullptr ? tenant.inflight
                                               : tenant.queue.front();
  return head->bitstream.name;
}

Vcopd::Tenant* Vcopd::PickNext() {
  if (config_.policy == ServicePolicy::kFifoBatch) {
    // Earliest ticket among queue heads, except that a head matching
    // the resident set jumps the line (greedy bit-stream batching,
    // generalised to the configuration cache: the active design ranks
    // above a dormant resident slot ranks above a cold design; within
    // one rank, arrival order holds). With a single slot the resident
    // set IS the active design, i.e. the classic head-match.
    const hw::FpgaFabric& fabric = kernel_.fabric();
    Tenant* best = nullptr;
    Ticket best_ticket = 0;
    u32 best_rank = 0;
    for (const std::unique_ptr<Tenant>& t : tenants_) {
      if (!t->active || !Runnable(*t)) continue;
      const std::string& design = HeadDesign(*t);
      const u32 rank = design == fabric.active_design() ? 2
                       : fabric.DesignResident(design)  ? 1
                                                        : 0;
      const Ticket ticket =
          (t->inflight != nullptr ? t->inflight : t->queue.front())->ticket;
      if (best == nullptr || rank > best_rank ||
          (rank == best_rank && ticket < best_ticket)) {
        best = t.get();
        best_ticket = ticket;
        best_rank = rank;
      }
    }
    return best;
  }

  // Deficit round-robin: stay with the current tenant while it has both
  // work and deficit, otherwise advance the ring, topping up the next
  // runnable tenant's deficit by quantum x weight.
  if (current_ != nullptr && current_->active && Runnable(*current_) &&
      current_->deficit > 0) {
    return current_;
  }
  usize start = 0;
  if (current_ != nullptr) {
    for (usize i = 0; i < tenants_.size(); ++i) {
      if (tenants_[i].get() == current_) {
        start = i + 1;
        break;
      }
    }
  }
  // Strict ring order: the first runnable tenant from `start`.
  Tenant* fair = nullptr;
  usize fair_k = 0;
  for (usize k = 0; k < tenants_.size(); ++k) {
    Tenant* t = tenants_[(start + k) % tenants_.size()].get();
    if (!t->active || !Runnable(*t)) continue;
    fair = t;
    fair_k = k;
    break;
  }
  if (fair == nullptr) return nullptr;

  Tenant* pick = fair;
  if (config_.design_affinity) {
    // Design affinity: when the strict choice would pay a full
    // reconfiguration, look further round the ring for a tenant whose
    // design is resident in a configuration slot — but never bypass a
    // tenant that has already been skipped `affinity_skip_budget`
    // times in a row (the DRR no-starvation bound).
    const hw::FpgaFabric& fabric = kernel_.fabric();
    if (!fabric.DesignResident(HeadDesign(*fair)) &&
        fair->affinity_skips < config_.affinity_skip_budget) {
      for (usize k = fair_k + 1; k < tenants_.size(); ++k) {
        Tenant* t = tenants_[(start + k) % tenants_.size()].get();
        if (!t->active || !Runnable(*t)) continue;
        if (t->affinity_skips >= config_.affinity_skip_budget) break;
        if (fabric.DesignResident(HeadDesign(*t))) {
          pick = t;
          break;
        }
      }
    }
    if (pick != fair) {
      // Every runnable tenant the bypass jumped over accrues a skip.
      for (usize k = fair_k; k < tenants_.size(); ++k) {
        Tenant* t = tenants_[(start + k) % tenants_.size()].get();
        if (t == pick) break;
        if (t->active && Runnable(*t)) ++t->affinity_skips;
      }
    }
    pick->affinity_skips = 0;
  }

  pick->deficit = std::min<i64>(pick->deficit, 0) +
                  static_cast<i64>(config_.quantum) *
                      static_cast<i64>(pick->weight);
  current_ = pick;
  return pick;
}

Result<Picoseconds> Vcopd::SwitchDesign(Job& job) {
  hw::FpgaFabric& fabric = kernel_.fabric();
  if (fabric.active_design() == job.bitstream.name) return Picoseconds{0};
  // Submit validated the price, but the library could have changed
  // since; a stale design fails the job, not the daemon. AcquireDesign
  // re-validates on the miss path.
  const Result<hw::SlotAcquire> acquired = fabric.AcquireDesign(job.bitstream);
  if (!acquired.ok()) return acquired.status();
  const hw::SlotAcquire& got = acquired.value();
  if (got.reconfigured) {
    ++stats_.reconfigurations;
    stats_.total_config_time += got.time;
    ++job.result.reconfigurations;
    job.result.config_time += got.time;
    kernel_.timeline().Record(
        StrFormat("vcopd configure %s", job.bitstream.name.c_str()),
        "config", kernel_.simulator().now(), got.time, /*track=*/3);
  } else if (got.activated) {
    ++stats_.slot_activations;
    stats_.total_activation_time += got.time;
    ++job.result.slot_activations;
    job.result.config_time += got.time;
    kernel_.timeline().Record(
        StrFormat("vcopd activate %s", job.bitstream.name.c_str()),
        "config", kernel_.simulator().now(), got.time, /*track=*/3);
  }
  return got.time;
}

void Vcopd::InstantiateHardware(Tenant& tenant, Job& job) {
  const KernelConfig& kc = kernel_.config();
  hw::ImuConfig imu_config;
  imu_config.access_latency_cycles = kc.imu_access_latency;
  imu_config.pipelined = kc.imu_pipelined;
  if (kc.l2_tlb_entries > 0) {
    imu_config.tlb_entries =
        kc.l1_tlb_entries > 0 ? kc.l1_tlb_entries : kc.tlb_entries;
    imu_config.shared_tlb_is_l2 = true;
  } else {
    imu_config.tlb_entries = kc.tlb_entries;
  }
  imu_config.bounds_check = kc.imu_bounds_check;
  imu_config.posted_writes = kc.imu_posted_writes;
  imu_config.translation_cache = kc.imu_translation_cache;

  ++hardware_count_;
  job.imu = std::make_unique<hw::Imu>(
      imu_config,
      mem::PageGeometry(kc.page_bytes, kc.dp_ram_bytes / kc.page_bytes),
      kernel_.dp_ram(), kernel_.irq(), kernel_.simulator(),
      &kernel_.shared_tlb());
  job.imu->SetAsid(tenant.space->asid());
  job.imu->set_fault_plan(kernel_.fault_plan());
  // First-level TLB recovery wiring (identical re-install when tlb()
  // IS the shared TLB in single-level mode).
  job.imu->tlb().set_fault_plan(kernel_.fault_plan());
  job.imu->tlb().set_parity_drop_hook([this](const hw::TlbEntry& dropped) {
    kernel_.vim().OnTlbParityDrop(dropped);
  });

  // IMU domain first: on coincident edges the translation pipeline must
  // advance before the core samples CP_TLBHIT (same as Kernel::FpgaLoad).
  job.imu_domain = &kernel_.simulator().AddClockDomain(
      StrFormat("vcopd-imu%u@%s", hardware_count_,
                job.bitstream.imu_clock.ToString().c_str()),
      job.bitstream.imu_clock);
  job.cp_domain = &kernel_.simulator().AddClockDomain(
      StrFormat("vcopd-cp%u@%s", hardware_count_,
                job.bitstream.cp_clock.ToString().c_str()),
      job.bitstream.cp_clock);
  job.core = job.bitstream.create();
  job.imu->BindClocks(*job.imu_domain, *job.cp_domain);
  job.imu_domain->Attach(*job.imu);
  job.cp_domain->Attach(*job.core);
  job.core->BindPort(*job.imu);
}

Status Vcopd::RunSlice(Tenant& tenant) {
  sim::Simulator& sim = kernel_.simulator();
  Vim& vim = kernel_.vim();

  const bool resuming = tenant.inflight != nullptr;
  Job* job;
  if (resuming) {
    job = tenant.inflight;
    VCOP_CHECK_MSG(job->state == VcopdJobState::kPreempted,
                   "in-flight job in unexpected state");
  } else {
    job = tenant.queue.front();
    tenant.queue.pop_front();
    tenant.inflight = job;
  }

  const Picoseconds dispatch_time = sim.now();
  const Result<Picoseconds> switched = SwitchDesign(*job);
  if (!switched.ok()) {
    // The configuration stream failed: the fabric keeps its previous
    // design, the job fails cleanly. A resumed job's saved context is
    // discarded without writing partial results back to user memory.
    if (resuming) {
      kernel_.vim().FlushAsid(tenant.space->asid(), /*write_back=*/false);
    } else {
      job->result.started_at = dispatch_time;
    }
    FinishJob(tenant, *job, switched.status());
    return Status::Ok();
  }
  const Picoseconds lead = switched.value();
  if (!resuming) {
    job->result.started_at = dispatch_time;
    InstantiateHardware(tenant, *job);
  }

  vim.BindImu(job->imu.get());
  vim.AttachSpace(tenant.space.get());
  // The watchdog's hang detector tracks this job's core, not the
  // kernel's exclusive coprocessor.
  hw::Coprocessor* slice_core = job->core.get();
  vim.set_progress_probe([slice_core]() -> u64 {
    return slice_core != nullptr ? slice_core->cycles_run() : 0;
  });

  bool done = false;
  Status failure = Status::Ok();
  Picoseconds tail_cost = 0;
  const hw::Asid asid = tenant.space->asid();

  vim.set_completion_handler([&done] { done = true; });
  vim.set_abort_handler([&, job](Status status) {
    failure = std::move(status);
    job->core->Abort();
    // An aborted run's partial results must never reach user memory.
    tail_cost += kernel_.vim().FlushAsid(asid, /*write_back=*/false);
    done = true;
  });
  slice_preempted_ = false;
  slice_preempt_cost_ = 0;
  vim.set_preempt_check([this, &tenant] {
    if (config_.policy != ServicePolicy::kFairShare) return false;
    if (kernel_.simulator().now() - slice_started_at_ <
        config_.time_slice) {
      return false;
    }
    return AnyOtherRunnable(&tenant);
  });
  vim.set_preempt_handler([this](Picoseconds cost) {
    slice_preempted_ = true;
    slice_preempt_cost_ = cost;
  });

  const hw::TlbStats tlb_mark = kernel_.shared_tlb().stats();
  ++stats_.dispatches;
  tenant.space->process().NoteSlice();

  if (!resuming) {
    const Result<Picoseconds> setup =
        vim.PrepareExecution(job->params, ResetScope::kAsidScoped);
    if (!setup.ok()) {
      vim.set_completion_handler(nullptr);
      vim.set_abort_handler(nullptr);
      vim.set_preempt_check(nullptr);
      vim.set_preempt_handler(nullptr);
      if (vim.fault_abort()) Quarantine(tenant);
      FinishJob(tenant, *job, setup.status());
      return Status::Ok();
    }
    job->state = VcopdJobState::kRunning;
    job->result.report.t_invoke += lead + setup.value();
    const Picoseconds go = dispatch_time + lead + setup.value();
    slice_started_at_ = go;
    hw::Imu* imu = job->imu.get();
    hw::Coprocessor* core = job->core.get();
    sim::ClockDomain* cp = job->cp_domain;
    const u32 nparams = static_cast<u32>(job->params.size());
    kernel_.timeline().Record(
        StrFormat("vcopd dispatch pid%u %s", tenant.space->pid(),
                  job->bitstream.name.c_str()),
        "exec", dispatch_time, lead + setup.value(), /*track=*/3);
    sim.ScheduleAt(go, [imu, core, cp, nparams] {
      imu->AssertStart();
      core->Start(nparams);
      cp->Kick();
    });
  } else {
    job->state = VcopdJobState::kRunning;
    job->result.report.t_invoke += lead;
    // RestoreContext charges its own time to the space's accounting.
    const Picoseconds restore = vim.RestoreContext();
    const Picoseconds go = dispatch_time + lead + restore;
    slice_started_at_ = go;
    kernel_.timeline().Record(
        StrFormat("vcopd resume pid%u %s", tenant.space->pid(),
                  job->bitstream.name.c_str()),
        "exec", dispatch_time, lead + restore, /*track=*/3);
    // The preempting fault is still latched in the IMU: re-enter its
    // service now that the context is back.
    Vim* vimp = &vim;
    sim.ScheduleAt(go, [vimp] { vimp->OnPageFault(); });
  }

  const bool converged =
      sim.RunUntil([&] { return done || slice_preempted_; });

  // Attribute this slice's shared-TLB traffic to the job.
  const hw::TlbStats tlb_now = kernel_.shared_tlb().stats();
  job->tlb_acc.lookups += tlb_now.lookups - tlb_mark.lookups;
  job->tlb_acc.hits += tlb_now.hits - tlb_mark.hits;
  job->tlb_acc.misses += tlb_now.misses - tlb_mark.misses;

  vim.set_completion_handler(nullptr);
  vim.set_abort_handler(nullptr);
  vim.set_preempt_check(nullptr);
  vim.set_preempt_handler(nullptr);

  if (!converged) {
    failure = UnavailableError(
        "coprocessor did not complete (simulation went idle or exceeded "
        "its event budget) — FSM deadlock?");
    job->core->Abort();
    tail_cost += vim.FlushAsid(asid, /*write_back=*/false);
    done = true;
    slice_preempted_ = false;
  }

  if (slice_preempted_ && !done) {
    // The decode + save service takes real time: advance the clock
    // before the next tenant is dispatched.
    sim.ScheduleAfter(slice_preempt_cost_, [] {});
    sim.RunToIdle();
    job->state = VcopdJobState::kPreempted;
    ++job->result.preemptions;
    ++stats_.preemptions;
  } else {
    if (tail_cost > 0) {
      sim.ScheduleAfter(tail_cost, [] {});
      sim.RunToIdle();
    }
    // A fault-budget abort, hang abort or non-convergence quarantines
    // the tenant: its later Submits fail fast, other ASIDs keep going.
    if (!failure.ok() && (vim.fault_abort() || !converged)) {
      Quarantine(tenant);
    }
    FinishJob(tenant, *job, failure);
  }
  tenant.deficit -= static_cast<i64>(sim.now() - dispatch_time);
  return Status::Ok();
}

void Vcopd::Quarantine(Tenant& tenant) {
  if (tenant.quarantined) return;
  tenant.quarantined = true;
  ++stats_.quarantined;
  VCOP_LOG(kInfo, StrFormat("vcopd: quarantining tenant %u (pid %u) after "
                            "a fault abort",
                            tenant.id, tenant.space->pid()));
}

void Vcopd::FinishJob(Tenant& tenant, Job& job, Status status) {
  job.state =
      status.ok() ? VcopdJobState::kDone : VcopdJobState::kFailed;
  tenant.inflight = nullptr;

  JobResult& r = job.result;
  r.status = std::move(status);
  r.finished_at = kernel_.simulator().now();

  const VimAccounting& acct = tenant.space->accounting;
  ExecutionReport& report = r.report;
  report.total = r.finished_at - r.started_at;
  report.t_invoke += acct.t_wakeup;
  report.t_dp = acct.t_dp;
  report.t_imu = acct.t_imu;
  // `total` includes switched-out time under other tenants, so the
  // remainder is not pure hardware time for preempted jobs (see
  // JobResult). Clamp defensively for failed-before-start jobs.
  const Picoseconds charged = report.t_invoke + report.t_dp + report.t_imu;
  report.t_hw = report.total > charged ? report.total - charged : 0;
  report.vim = acct;
  if (job.imu != nullptr) report.imu = job.imu->stats();
  report.tlb = job.tlb_acc;
  if (job.core != nullptr) report.cp_cycles = job.core->cycles_run();

  if (r.status.ok()) {
    ++stats_.completed;
  } else {
    ++stats_.failed;
  }
  kernel_.timeline().Record(
      StrFormat("vcopd complete pid%u %s%s", tenant.space->pid(),
                job.bitstream.name.c_str(),
                r.status.ok() ? "" : " (failed)"),
      "exec", r.finished_at, 0, /*track=*/3);
  if (job.on_complete) job.on_complete(r);
}

void Vcopd::RestoreKernelBinding() {
  kernel_.vim().AttachSpace(&kernel_.default_space());
  kernel_.vim().BindImu(kernel_.imu());
  Kernel* kernel = &kernel_;
  kernel_.vim().set_progress_probe([kernel]() -> u64 {
    hw::Coprocessor* core = kernel->fabric().coprocessor();
    return core != nullptr ? core->cycles_run() : 0;
  });
}

}  // namespace vcop::os
