#include "os/scheduler.h"

#include <algorithm>
#include <unordered_map>

#include "base/latency_histogram.h"
#include "base/table.h"

namespace vcop::os {

std::string_view ToString(ScheduleOrder order) {
  switch (order) {
    case ScheduleOrder::kFifo: return "fifo";
    case ScheduleOrder::kBatchBitstream: return "batch-by-bitstream";
  }
  return "?";
}

Picoseconds ScheduleReport::mean_turnaround() const {
  if (outcomes.empty()) return 0;
  unsigned __int128 sum = 0;
  for (const JobOutcome& o : outcomes) sum += o.turnaround();
  return static_cast<Picoseconds>(sum / outcomes.size());
}

usize ScheduleReport::failures() const {
  usize n = 0;
  for (const JobOutcome& o : outcomes) n += !o.status.ok();
  return n;
}

Picoseconds Percentile(std::vector<Picoseconds> samples, double q) {
  return PercentileNearestRank(std::move(samples), q);
}

Picoseconds ScheduleReport::max_wait() const {
  Picoseconds w = 0;
  for (const JobOutcome& o : outcomes) w = std::max(w, o.wait());
  return w;
}

std::vector<TenantFairness> ScheduleReport::per_pid() const {
  std::map<u32, std::vector<const JobOutcome*>> by_pid;
  for (const JobOutcome& o : outcomes) by_pid[o.pid].push_back(&o);

  std::vector<TenantFairness> result;
  result.reserve(by_pid.size());
  for (const auto& [pid, jobs] : by_pid) {
    TenantFairness f;
    f.pid = pid;
    f.jobs = jobs.size();
    std::vector<Picoseconds> turnarounds;
    turnarounds.reserve(jobs.size());
    for (const JobOutcome* o : jobs) {
      f.busy += o->finished_at - o->started_at;
      f.max_wait = std::max(f.max_wait, o->wait());
      f.max_turnaround = std::max(f.max_turnaround, o->turnaround());
      turnarounds.push_back(o->turnaround());
    }
    f.p50_turnaround = Percentile(turnarounds, 0.50);
    f.p99_turnaround = Percentile(std::move(turnarounds), 0.99);
    f.makespan_share =
        makespan == 0 ? 0.0
                      : static_cast<double>(f.busy) /
                            static_cast<double>(makespan);
    result.push_back(f);
  }
  return result;
}

FpgaScheduler::FpgaScheduler(Kernel& kernel,
                             std::map<std::string, hw::Bitstream> designs)
    : kernel_(kernel), designs_(std::move(designs)) {}

ScheduleReport FpgaScheduler::RunAll(std::vector<FpgaJob> jobs,
                                     ScheduleOrder order) {
  if (order == ScheduleOrder::kBatchBitstream) {
    // Stable partition by design, groups ordered by first submission —
    // within a group the submission order is preserved, so no job can
    // be starved by a later arrival of the same design. One pass builds
    // the first-seen rank of each design; the comparator is then an
    // integer compare instead of a linear scan per comparison.
    std::unordered_map<std::string, u32> group_index;
    for (const FpgaJob& job : jobs) {
      group_index.emplace(job.bitstream,
                          static_cast<u32>(group_index.size()));
    }
    std::stable_sort(
        jobs.begin(), jobs.end(),
        [&group_index](const FpgaJob& a, const FpgaJob& b) {
          return group_index.at(a.bitstream) < group_index.at(b.bitstream);
        });
  }

  ScheduleReport schedule;
  const Picoseconds batch_start = kernel_.simulator().now();

  for (FpgaJob& job : jobs) {
    JobOutcome outcome;
    outcome.pid = job.pid;
    outcome.bitstream = job.bitstream;
    outcome.submitted_at = batch_start;
    outcome.started_at = kernel_.simulator().now();

    const auto design = designs_.find(job.bitstream);
    if (design == designs_.end()) {
      outcome.status = NotFoundError(
          StrFormat("no design '%s' in the library", job.bitstream.c_str()));
      outcome.finished_at = kernel_.simulator().now();
      schedule.outcomes.push_back(std::move(outcome));
      continue;
    }

    // (Re)configure the fabric when the loaded design differs.
    const bool loaded_matches =
        kernel_.fabric().loaded() &&
        kernel_.fabric().current_bitstream().name == job.bitstream;
    if (!loaded_matches) {
      if (kernel_.fabric().loaded()) {
        const Status unload = kernel_.FpgaUnload();
        VCOP_CHECK_MSG(unload.ok(), unload.ToString());
      }
      const Status load = kernel_.FpgaLoad(design->second);
      if (!load.ok()) {
        outcome.status = load;
        outcome.finished_at = kernel_.simulator().now();
        schedule.outcomes.push_back(std::move(outcome));
        continue;
      }
      outcome.reconfigurations = 1;
      outcome.config_time = kernel_.last_load_time();
      schedule.total_config_time += outcome.config_time;
      ++schedule.reconfigurations;
    }

    // Clean slate for the job's mappings.
    kernel_.vim().objects().Clear();
    if (!job.run) {
      outcome.status = InvalidArgumentError("job has no body");
    } else {
      Result<ExecutionReport> result = job.run(kernel_);
      if (result.ok()) {
        outcome.report = result.value();
      } else {
        outcome.status = result.status();
      }
    }
    outcome.finished_at = kernel_.simulator().now();
    schedule.outcomes.push_back(std::move(outcome));
  }

  schedule.makespan = kernel_.simulator().now() - batch_start;
  const VimServiceStats& svc = kernel_.vim().service_stats();
  schedule.transfer_retries = svc.transfer_retries;
  schedule.watchdog_recoveries = svc.watchdog_recoveries;
  schedule.prefetch_issued = svc.prefetch_issued;
  schedule.prefetch_useful = svc.prefetch_useful;
  schedule.prefetch_wasted = svc.prefetch_wasted;
  schedule.victim_tlb_hits = svc.victim_tlb_hits;
  schedule.coalesced_bursts = svc.coalesced_bursts;
  schedule.coalesced_pages = svc.coalesced_pages;
  return schedule;
}

}  // namespace vcop::os
