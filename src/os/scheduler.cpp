#include "os/scheduler.h"

#include <algorithm>

#include "base/table.h"

namespace vcop::os {

std::string_view ToString(ScheduleOrder order) {
  switch (order) {
    case ScheduleOrder::kFifo: return "fifo";
    case ScheduleOrder::kBatchBitstream: return "batch-by-bitstream";
  }
  return "?";
}

Picoseconds ScheduleReport::mean_turnaround() const {
  if (outcomes.empty()) return 0;
  unsigned __int128 sum = 0;
  for (const JobOutcome& o : outcomes) sum += o.turnaround();
  return static_cast<Picoseconds>(sum / outcomes.size());
}

usize ScheduleReport::failures() const {
  usize n = 0;
  for (const JobOutcome& o : outcomes) n += !o.status.ok();
  return n;
}

FpgaScheduler::FpgaScheduler(Kernel& kernel,
                             std::map<std::string, hw::Bitstream> designs)
    : kernel_(kernel), designs_(std::move(designs)) {}

ScheduleReport FpgaScheduler::RunAll(std::vector<FpgaJob> jobs,
                                     ScheduleOrder order) {
  if (order == ScheduleOrder::kBatchBitstream) {
    // Stable partition by design, groups ordered by first submission —
    // within a group the submission order is preserved, so no job can
    // be starved by a later arrival of the same design.
    std::vector<std::string> group_order;
    for (const FpgaJob& job : jobs) {
      if (std::find(group_order.begin(), group_order.end(),
                    job.bitstream) == group_order.end()) {
        group_order.push_back(job.bitstream);
      }
    }
    std::stable_sort(
        jobs.begin(), jobs.end(),
        [&group_order](const FpgaJob& a, const FpgaJob& b) {
          const auto ia = std::find(group_order.begin(), group_order.end(),
                                    a.bitstream);
          const auto ib = std::find(group_order.begin(), group_order.end(),
                                    b.bitstream);
          return ia < ib;
        });
  }

  ScheduleReport schedule;
  const Picoseconds batch_start = kernel_.simulator().now();

  for (FpgaJob& job : jobs) {
    JobOutcome outcome;
    outcome.pid = job.pid;
    outcome.bitstream = job.bitstream;
    outcome.submitted_at = batch_start;
    outcome.started_at = kernel_.simulator().now();

    const auto design = designs_.find(job.bitstream);
    if (design == designs_.end()) {
      outcome.status = NotFoundError(
          StrFormat("no design '%s' in the library", job.bitstream.c_str()));
      outcome.finished_at = kernel_.simulator().now();
      schedule.outcomes.push_back(std::move(outcome));
      continue;
    }

    // (Re)configure the fabric when the loaded design differs.
    const bool loaded_matches =
        kernel_.fabric().loaded() &&
        kernel_.fabric().current_bitstream().name == job.bitstream;
    if (!loaded_matches) {
      if (kernel_.fabric().loaded()) {
        const Status unload = kernel_.FpgaUnload();
        VCOP_CHECK_MSG(unload.ok(), unload.ToString());
      }
      const Status load = kernel_.FpgaLoad(design->second);
      if (!load.ok()) {
        outcome.status = load;
        outcome.finished_at = kernel_.simulator().now();
        schedule.outcomes.push_back(std::move(outcome));
        continue;
      }
      outcome.reconfigured = true;
      outcome.config_time = kernel_.last_load_time();
      schedule.total_config_time += outcome.config_time;
      ++schedule.reconfigurations;
    }

    // Clean slate for the job's mappings.
    kernel_.vim().objects().Clear();
    if (!job.run) {
      outcome.status = InvalidArgumentError("job has no body");
    } else {
      Result<ExecutionReport> result = job.run(kernel_);
      if (result.ok()) {
        outcome.report = result.value();
      } else {
        outcome.status = result.status();
      }
    }
    outcome.finished_at = kernel_.simulator().now();
    schedule.outcomes.push_back(std::move(outcome));
  }

  schedule.makespan = kernel_.simulator().now() - batch_start;
  return schedule;
}

}  // namespace vcop::os
