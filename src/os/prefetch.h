// Prefetch strategies for the interface memory.
//
// "Also, speculative actions as prefetching could be used in order to
// avoid translation misses." (§3.3) The paper leaves this as future
// work; we implement it as a pluggable strategy consulted during fault
// service, and evaluate it in bench/abl_prefetch.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "base/types.h"
#include "hw/tlb.h"
#include "mem/page.h"

namespace vcop::os {

enum class PrefetchKind : u8 { kNone, kSequential };

std::string_view ToString(PrefetchKind kind);

/// A page the prefetcher wants resident in addition to the faulting one.
struct PrefetchSuggestion {
  hw::ObjectId object;
  mem::VirtPage vpage;
};

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;
  virtual std::string_view name() const = 0;

  /// Consulted while servicing a fault on (object, vpage). `num_pages`
  /// is the page count of the faulting object; suggestions beyond it
  /// are the prefetcher's responsibility to avoid.
  virtual std::vector<PrefetchSuggestion> Suggest(hw::ObjectId object,
                                                  mem::VirtPage vpage,
                                                  u32 num_pages) = 0;
};

/// Factory. `depth` is the look-ahead of the sequential prefetcher.
std::unique_ptr<Prefetcher> MakePrefetcher(PrefetchKind kind, u32 depth = 1);

}  // namespace vcop::os
