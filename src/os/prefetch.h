// Prefetch strategies for the interface memory.
//
// "Also, speculative actions as prefetching could be used in order to
// avoid translation misses." (§3.3) The paper leaves this as future
// work; we implement it as a pluggable strategy consulted during fault
// service, and evaluate it in bench/abl_prefetch and bench_prefetch.
//
// Four strategies form a taxonomy:
//
//   kNone        — demand paging only.
//   kSequential  — after a fault on page p, suggest p+1..p+depth
//                  (streaming apps: adpcm, IDEA).
//   kStride      — per-object stride detector with a confidence
//                  counter: learns a single dominant inter-fault
//                  stride per object and suggests along it once
//                  confident (regular strided sweeps).
//   kAdaptive    — per-object reference-prediction table in the
//                  Chen/Baer style: a handful of stream slots per
//                  object, each with its own stride and a two-bit
//                  state machine, so interleaved streams (conv2d's
//                  three live image rows) are tracked independently.
//                  Classifies sequential / strided / irregular and
//                  degrades to a no-op on low confidence.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "base/types.h"
#include "hw/tlb.h"
#include "mem/page.h"

namespace vcop::os {

enum class PrefetchKind : u8 { kNone, kSequential, kStride, kAdaptive };

std::string_view ToString(PrefetchKind kind);

/// A page the prefetcher wants resident in addition to the faulting one.
struct PrefetchSuggestion {
  hw::ObjectId object;
  mem::VirtPage vpage;
};

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;
  virtual std::string_view name() const = 0;

  /// Consulted while servicing a fault on (object, vpage). `num_pages`
  /// is the page count of the faulting object. Suggestions are
  /// *advisory*: the VIM enforces the contract centrally (same object,
  /// in-range, not the faulting page) and drops violations, so a buggy
  /// strategy cannot crash a run.
  virtual std::vector<PrefetchSuggestion> Suggest(hw::ObjectId object,
                                                  mem::VirtPage vpage,
                                                  u32 num_pages) = 0;

  /// Clears learned history (stride tables, stream slots). Called by
  /// the VIM at the start of each full-reset execution so one run's
  /// access pattern cannot pollute the next run's predictions.
  virtual void Reset() {}
};

/// Factory. `depth` is the look-ahead (pages suggested per fault and
/// stream) of the sequential, stride and adaptive prefetchers.
std::unique_ptr<Prefetcher> MakePrefetcher(PrefetchKind kind, u32 depth = 1);

}  // namespace vcop::os
