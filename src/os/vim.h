// The Virtual Interface Manager — the paper's central OS contribution.
//
// "As the VMM does, a Virtual Interface Manager (VIM) handles the
// translation unit and the content of the interface memory. The IMU
// sends an interrupt to the OS when the VIM needs to provide data to
// the coprocessor through the interface." (§2.1)
//
// The VIM implements the two interrupt services of §3.3:
//
//   Page Fault — decode AR, find the faulting (object, page); if the
//   page is resident but unmapped in the TLB, refill the TLB; otherwise
//   allocate a frame (evicting a victim by the configured policy,
//   writing it back iff dirty), load the page from user space unless
//   the object was mapped OUT, install the translation, then let the
//   IMU restart the translation.
//
//   End of Operation — copy back to user space all dirty data residing
//   in the dual-port memory and wake the caller.
//
// All state changes are applied functionally at interrupt time (the
// coprocessor is stalled and cannot observe them) while their *cost*
// is modelled by scheduling the IMU restart / process wake-up after the
// computed service time. The cost is split the way the paper reports
// it: time transferring data (DP management) vs. time decoding the
// fault and updating translations (IMU management).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "hw/imu.h"
#include "mem/transfer.h"
#include "mem/user_memory.h"
#include "os/calibration.h"
#include "os/object_table.h"
#include "os/page_manager.h"
#include "os/policy.h"
#include "os/prefetch.h"
#include "os/timeline.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace vcop::os {

struct VimConfig {
  PolicyKind policy = PolicyKind::kFifo;
  PrefetchKind prefetch = PrefetchKind::kNone;
  u32 prefetch_depth = 1;
  /// Overlapped prefetching (§3.3: "prefetching [...] allowing
  /// overlapping of processor and coprocessor execution"): instead of
  /// lengthening the fault service, speculative page loads run on the
  /// CPU *while the coprocessor executes*. A page arrives with its
  /// translation pre-installed, so the coprocessor never faults on it;
  /// a fault racing an in-flight load waits only for the remainder.
  bool overlap_prefetch = false;
  mem::CopyMode copy_mode = mem::CopyMode::kDoubleCopy;
  /// Seed for the random replacement policy.
  u64 seed = 1;
};

/// Per-execution accounting, matching the decomposition of Figures 8/9.
struct VimAccounting {
  /// "software execution time for the dual-port RAM management (time
  /// spent in the OS transferring data from/to user-space memory)"
  Picoseconds t_dp = 0;
  /// "software execution time for the IMU management (time spent in the
  /// OS checking which address has generated the fault and updating the
  /// translation table)"
  Picoseconds t_imu = 0;
  /// Waking the sleeping caller at end of operation — invocation
  /// machinery, reported with the invocation overhead, not as IMU
  /// management.
  Picoseconds t_wakeup = 0;

  u64 faults = 0;           // hard faults: page not resident
  u64 tlb_refills = 0;      // soft faults: resident, TLB entry missing
  u64 evictions = 0;
  u64 writebacks = 0;
  u64 loads = 0;
  u64 prefetched_pages = 0;
  /// Pages written back in place by background cleaning (overlap mode).
  u64 cleaned_pages = 0;
  u64 bytes_loaded = 0;
  u64 bytes_written_back = 0;
  /// CPU time spent on transfers that ran concurrently with coprocessor
  /// execution (overlapped prefetch). NOT part of the serial t_dp sum —
  /// it does not extend the wall time unless a fault has to wait.
  Picoseconds t_dp_overlapped = 0;
  /// Portion of fault-service time spent waiting for an in-flight
  /// overlapped transfer (or for the CPU to finish one). Included in
  /// t_dp.
  Picoseconds t_dp_wait = 0;
  /// Writes observed to pages of objects mapped IN (coprocessor bug
  /// indicator: those dirty pages are dropped, honouring the hint).
  u64 dirty_in_pages_dropped = 0;
  /// Distribution of individual fault-service times in microseconds
  /// (interrupt entry to coprocessor restart).
  sim::Summary fault_service_us;
};

class Vim {
 public:
  Vim(const CostModel& costs, mem::PageGeometry geometry,
      mem::DualPortRam& dp_ram, mem::UserMemory& user_memory,
      sim::Simulator& sim);

  /// Applies a configuration (policy, prefetch, copy mode). May be
  /// called between executions.
  void Configure(const VimConfig& config);

  /// Replaces the replacement policy with a custom instance (e.g. the
  /// Belady oracle) — Configure() would reinstall a built-in one.
  void SetPolicy(std::unique_ptr<ReplacementPolicy> policy);

  /// Rebinds to a freshly configured IMU (at FPGA_LOAD).
  void BindImu(hw::Imu* imu);

  ObjectTable& objects() { return objects_; }
  const ObjectTable& objects() const { return objects_; }

  /// Prepares an execution: validates mappings, programs the IMU object
  /// descriptor table, clears TLB and page frames, writes the scalar
  /// `params` into the parameter page and maps it. Returns the setup
  /// cost on success.
  Result<Picoseconds> PrepareExecution(std::span<const u32> params);

  /// Interrupt services (wired to the InterruptLine by the kernel).
  void OnPageFault();
  void OnEndOfOperation();

  /// Called when the end-of-operation service (including write-backs)
  /// completes; the kernel uses it to wake the sleeping process.
  void set_completion_handler(std::function<void()> handler) {
    on_complete_ = std::move(handler);
  }

  /// Called when a run must be aborted (fault on an unmapped object or
  /// out-of-bounds access). The kernel fails the FPGA_EXECUTE call.
  void set_abort_handler(std::function<void(Status)> handler) {
    on_abort_ = std::move(handler);
  }

  /// Optional event timeline (owned by the kernel); nullptr disables.
  void set_timeline(TimelineRecorder* timeline) { timeline_ = timeline; }

  const VimAccounting& accounting() const { return accounting_; }
  const VimConfig& config() const { return config_; }
  const CostModel& costs() const { return costs_; }
  PageManager& page_manager() { return pages_; }
  mem::TransferEngine& transfer_engine() { return transfers_; }

 private:
  enum class MapOutcome {
    kMapped,   // page resident and translated
    kSkipped,  // prefetch declined (no cheap frame available)
    kAborted,  // run failed
  };

  /// Ensures (object, vpage) is resident and mapped in the TLB.
  /// Accumulates transfer/management costs into the out-params.
  /// In prefetch mode the call is best-effort: it uses a free frame or
  /// evicts a *clean* page, but never pays a write-back for a guess.
  MapOutcome EnsureMapped(const MappedObject& object, mem::VirtPage vpage,
                          bool prefetch, Picoseconds& dp_cost,
                          Picoseconds& imu_cost);

  /// Evicts the page in `frame` (write-back iff dirty and not IN).
  void EvictFrame(mem::FrameId frame, Picoseconds& dp_cost,
                  Picoseconds& imu_cost);

  /// Installs a TLB entry for (object, vpage)->frame, recycling a TLB
  /// slot round-robin when none is free; propagates the recycled
  /// entry's dirty bit into the page state.
  void InstallTlbEntry(hw::ObjectId object, mem::VirtPage vpage,
                       mem::FrameId frame);

  /// Byte length of `vpage` within `object` (short for the last page).
  u32 PageLength(const MappedObject& object, mem::VirtPage vpage) const;

  /// Pulls the TLB accessed bits into the replacement policy.
  void HarvestRecency();

  void Abort(Status status);

  CostModel costs_;
  mem::PageGeometry geometry_;
  mem::DualPortRam& dp_ram_;
  mem::UserMemory& user_memory_;
  sim::Simulator& sim_;
  mem::TransferEngine transfers_;

  VimConfig config_{};
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<Prefetcher> prefetcher_;

  hw::Imu* imu_ = nullptr;
  ObjectTable objects_;
  PageManager pages_;
  u32 tlb_recycle_cursor_ = 0;
  std::optional<mem::FrameId> param_frame_;
  /// Pages of OUT objects that have been written back at least once.
  /// Their next fault must reload them: skipping the load (the OUT
  /// optimisation) is only sound for a page's *first* touch, otherwise
  /// the end-of-run write-back would clobber earlier results with the
  /// frame's stale content.
  std::set<std::pair<hw::ObjectId, mem::VirtPage>> written_back_;

  /// Overlapped-prefetch state: transfers the CPU is running in the
  /// background while the coprocessor executes.
  struct InFlight {
    hw::ObjectId object;
    mem::VirtPage vpage;
    mem::FrameId frame;
    Picoseconds ready_at;
  };
  std::vector<InFlight> in_flight_;
  Picoseconds cpu_busy_until_ = 0;
  /// Invalidates stale completion events across executions/aborts.
  u64 epoch_ = 0;

  /// Queues one overlapped prefetch unit for (object, vpage); `tail` is
  /// the running CPU-availability time, advanced past the new unit.
  void ScheduleOverlappedPrefetch(const MappedObject& object,
                                  mem::VirtPage vpage, Picoseconds& tail);

  /// Queues background *cleaning* of dirty, not-recently-touched pages:
  /// writing them back while the coprocessor runs so that later
  /// evictions find clean victims — the page-daemon counterpart of
  /// overlapped prefetch.
  void ScheduleBackgroundCleaning(Picoseconds& tail);

  /// Merged (page-state | live-TLB) dirty bit of `frame`.
  bool FrameDirty(mem::FrameId frame) const;

  /// Frames the coprocessor touched since the previous fault
  /// (refreshed by HarvestRecency); speculation never evicts them.
  std::vector<bool> hot_frames_;

  VimAccounting accounting_{};
  TimelineRecorder* timeline_ = nullptr;
  std::function<void()> on_complete_;
  std::function<void(Status)> on_abort_;
  bool aborted_ = false;
};

}  // namespace vcop::os
