// The Virtual Interface Manager — the paper's central OS contribution.
//
// "As the VMM does, a Virtual Interface Manager (VIM) handles the
// translation unit and the content of the interface memory. The IMU
// sends an interrupt to the OS when the VIM needs to provide data to
// the coprocessor through the interface." (§2.1)
//
// The VIM implements the two interrupt services of §3.3:
//
//   Page Fault — decode AR, find the faulting (object, page); if the
//   page is resident but unmapped in the TLB, refill the TLB; otherwise
//   allocate a frame (evicting a victim by the configured policy,
//   writing it back iff dirty), load the page from user space unless
//   the object was mapped OUT, install the translation, then let the
//   IMU restart the translation.
//
//   End of Operation — copy back to user space all dirty data residing
//   in the dual-port memory and wake the caller.
//
// All state changes are applied functionally at interrupt time (the
// coprocessor is stalled and cannot observe them) while their *cost*
// is modelled by scheduling the IMU restart / process wake-up after the
// computed service time. The cost is split the way the paper reports
// it: time transferring data (DP management) vs. time decoding the
// fault and updating translations (IMU management).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "base/fault.h"
#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "hw/imu.h"
#include "mem/iommu.h"
#include "mem/transfer.h"
#include "mem/user_memory.h"
#include "os/address_space.h"
#include "os/calibration.h"
#include "os/object_table.h"
#include "os/page_manager.h"
#include "os/policy.h"
#include "os/prefetch.h"
#include "os/timeline.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace vcop::os {

struct VimConfig {
  PolicyKind policy = PolicyKind::kFifo;
  PrefetchKind prefetch = PrefetchKind::kNone;
  u32 prefetch_depth = 1;
  /// Overlapped prefetching (§3.3: "prefetching [...] allowing
  /// overlapping of processor and coprocessor execution"): instead of
  /// lengthening the fault service, speculative page loads run on the
  /// CPU *while the coprocessor executes*. A page arrives with its
  /// translation pre-installed, so the coprocessor never faults on it;
  /// a fault racing an in-flight load waits only for the remainder.
  bool overlap_prefetch = false;
  /// Entries in the software victim TLB: a VIM-side cache of recently
  /// evicted (asid, object, vpage) -> frame records. A fault whose page
  /// still sits intact in a free frame (the frame was never reused
  /// since the eviction, checked via the frame's install generation)
  /// skips the load and just re-installs the translation. 0 disables.
  u32 victim_tlb_entries = 0;
  /// Batch the write-back sweeps (end-of-operation, FlushAsid, context
  /// save / untagged switch-out) into scatter-gather bursts: one bus
  /// transaction covering every adjacent dirty page instead of one
  /// transfer per page. Off keeps the per-page path bit-identical.
  bool coalesce_writeback = false;
  /// Lazy context write-back (tagged saves only): SaveContext snapshots
  /// the TLB but defers the dirty sweep, leaving the tenant's frames
  /// resident-and-dirty under a per-asid ledger. A page is flushed on
  /// demand when another tenant's allocation evicts its frame (with
  /// coalesce_writeback on, the whole deferred set goes in one
  /// scatter-gather burst) or when FlushAsid tears the space down — so
  /// a tenant resumed onto a warm fabric pays zero write-back. Off
  /// keeps the eager clean-on-save path bit-identical.
  bool lazy_writeback = false;
  /// Zero-copy virtual-address DMA (DESIGN.md §13): page transfers
  /// stream directly between the user pages and the dual-port RAM
  /// through an IOMMU that translates the tenant's virtual addresses,
  /// bypassing the kernel bounce buffer entirely. Off keeps every
  /// transfer on the configured copy_mode path, bit-identical.
  bool iommu = false;
  /// IO-TLB capacity (power of two) when the IOMMU is on.
  u32 iotlb_entries = 16;
  mem::CopyMode copy_mode = mem::CopyMode::kDoubleCopy;
  /// Seed for the random replacement policy.
  u64 seed = 1;

  // ----- fault recovery (active only under an installed FaultPlan) -----

  /// Attempts per page transfer before the service gives up and the run
  /// fails cleanly. Each failed attempt adds an exponential backoff.
  u32 transfer_retry_limit = 4;
  /// Recovery actions (transfer retries, watchdog recoveries) one
  /// execution may consume before the VIM aborts it with
  /// ResourceExhausted instead of fighting a dying device forever.
  u32 fault_budget = 64;
  /// Interrupt watchdog period on the simulated timeline: when no
  /// progress signal arrives for this long, the VIM re-polls SR to
  /// recover lost interrupts (and, after repeated silent periods,
  /// declares the coprocessor hung). Armed only for non-empty plans, so
  /// fault-free runs schedule no extra events.
  Picoseconds watchdog_timeout = 1'000'000'000;  // 1 ms
};

/// How PrepareExecution treats state that outlives one execution.
enum class ResetScope {
  /// Single-tenant semantics (the legacy kernel path): wipe all frames,
  /// policy state and TLB content/statistics. Bit-identical to the
  /// behaviour before multi-tenancy existed.
  kFullReset,
  /// vcopd semantics: the fabric is shared — only the attached space's
  /// own residue is cleared; other tenants' frames and (ASID-tagged)
  /// TLB entries stay resident.
  kAsidScoped,
};

/// Service-daemon wide counters over all SaveContext / RestoreContext /
/// end-of-operation events, independent of which space was attached.
/// These are the numbers the ASID experiment gates on: tagging turns
/// full flushes into per-ASID invalidations and lets entries survive to
/// be counted as restored (or never dropped at all).
struct VimServiceStats {
  u64 context_saves = 0;
  u64 context_restores = 0;
  /// Whole-TLB invalidations forced by a tenant switch or scoped
  /// end-of-operation when ASID tagging is off.
  u64 full_tlb_flushes = 0;
  /// Switch/end events where tagging made a full flush unnecessary.
  u64 tlb_flushes_avoided = 0;
  /// Snapshot entries re-installed at resume because frame and mapping
  /// were still intact.
  u64 tlb_entries_restored = 0;
  /// Dirty pages eagerly written back during SaveContext (they stay
  /// resident and clean, so later cross-tenant eviction is free).
  u64 pages_written_back_on_save = 0;
  /// Parameter pages re-materialised at resume.
  u64 param_page_restores = 0;

  // ----- lazy context write-back (DESIGN.md §15) -----

  /// Tagged context saves that deferred their dirty sweep.
  u64 lazy_context_saves = 0;
  /// Dirty pages left resident-and-dirty at a lazy save (ledger marks).
  u64 pages_writeback_deferred = 0;
  /// Deferred pages later flushed on demand — by a foreign eviction,
  /// a coalesced burst, or FlushAsid. Deferred pages that were instead
  /// redirtied, dropped, or swept at end-of-operation never flush on
  /// the lazy path and are not counted here.
  u64 deferred_writebacks = 0;

  // ----- fault recovery (see DESIGN.md §9) -----

  /// AHB transfers re-run after a bus error.
  u64 transfer_retries = 0;
  /// Transfers abandoned after transfer_retry_limit attempts.
  u64 transfer_retry_failures = 0;
  /// Watchdog timer expiries (benign ticks included).
  u64 watchdog_wakeups = 0;
  /// Lost interrupts recovered by the watchdog's SR re-poll.
  u64 watchdog_recoveries = 0;
  /// Runs aborted because the watchdog saw no progress at all.
  u64 watchdog_hang_aborts = 0;
  /// Interrupt edges ignored because their service was already pending
  /// or done (duplicate-delivery safety).
  u64 duplicate_irqs_ignored = 0;
  /// Page-fault edges ignored because SR showed no pending fault.
  u64 spurious_faults_ignored = 0;
  /// Executions aborted after exhausting their per-request fault budget.
  u64 fault_budget_aborts = 0;
  /// TLB entries the hardware discarded on a failed parity check.
  u64 tlb_parity_drops = 0;

  // ----- speculation and batching (DESIGN.md §10) -----

  /// Pages loaded speculatively (sync or overlapped prefetch).
  u64 prefetch_issued = 0;
  /// Prefetched pages the coprocessor went on to touch.
  u64 prefetch_useful = 0;
  /// Prefetched pages released without ever being referenced.
  u64 prefetch_wasted = 0;
  /// Contract-violating suggestions dropped by the central clamp.
  u64 prefetch_suggestions_dropped = 0;
  /// Faults answered from the software victim TLB (load skipped) and
  /// faults that probed it without a usable entry.
  u64 victim_tlb_hits = 0;
  u64 victim_tlb_misses = 0;
  /// Scatter-gather write-back transactions and the pages they carried.
  u64 coalesced_bursts = 0;
  u64 coalesced_pages = 0;

  // ----- two-level TLB hierarchy (DESIGN.md §14) -----

  /// Dirty L1 victims of hardware L2->L1 fills whose L2 twin had
  /// already been recycled: their dirtiness was folded into the page
  /// state through the hierarchy's evict hook.
  u64 hw_tlb_evict_merges = 0;
};

class Vim {
 public:
  Vim(const CostModel& costs, mem::PageGeometry geometry,
      mem::DualPortRam& dp_ram, mem::UserMemory& user_memory,
      sim::Simulator& sim);

  /// Applies a configuration (policy, prefetch, copy mode). May be
  /// called between executions.
  void Configure(const VimConfig& config);

  /// Replaces the replacement policy with a custom instance (e.g. the
  /// Belady oracle) — Configure() would reinstall a built-in one.
  void SetPolicy(std::unique_ptr<ReplacementPolicy> policy);

  /// Replaces the prefetcher with a custom instance (tests use this to
  /// feed the VIM contract-violating suggestions) — Configure() would
  /// reinstall a built-in one.
  void SetPrefetcher(std::unique_ptr<Prefetcher> prefetcher);

  /// Rebinds to a freshly configured IMU (at FPGA_LOAD, and by vcopd at
  /// every dispatch boundary).
  void BindImu(hw::Imu* imu);

  /// Attaches the address space the VIM operates on. The kernel
  /// attaches its default space once; vcopd swaps tenant spaces at
  /// dispatch boundaries. Must outlive the attachment.
  void AttachSpace(AddressSpace* space);
  AddressSpace* space() { return space_; }

  ObjectTable& objects() { return space_->objects(); }
  const ObjectTable& objects() const { return space_->objects(); }

  /// Prepares an execution: validates mappings, programs the IMU object
  /// descriptor table, clears TLB and page frames (to the requested
  /// scope), writes the scalar `params` into the parameter page and
  /// maps it. Returns the setup cost on success.
  Result<Picoseconds> PrepareExecution(std::span<const u32> params,
                                       ResetScope scope =
                                           ResetScope::kFullReset);

  /// Interrupt services (wired to the InterruptLine by the kernel).
  void OnPageFault();
  void OnEndOfOperation();

  // ----- preemptive context switching (vcopd) -----

  /// Saves the attached space's interface context at a fault boundary:
  /// merges TLB dirty bits, snapshots the space's translations,
  /// releases the pinned parameter frame, and either eagerly cleans
  /// dirty frames (ASID tagging on — frames stay resident and clean) or
  /// evicts everything with a full TLB flush (tagging off, the
  /// flush-on-switch baseline). Charges the space's accounting and
  /// returns the total service time. The faulting IMU stays
  /// fault-stalled; re-enter via OnPageFault after RestoreContext.
  Picoseconds SaveContext();

  /// Restores a previously saved context: re-installs surviving TLB
  /// snapshot entries and re-materialises the parameter page if it was
  /// live. Returns the service time (charged to the space).
  Picoseconds RestoreContext();

  /// Drops every frame and TLB entry owned by `asid`. With `write_back`
  /// dirty non-IN pages go to user memory first; without, partial
  /// results are discarded (abort/teardown). Returns the transfer time.
  /// Does not charge any space's accounting — callers decide.
  Picoseconds FlushAsid(hw::Asid asid, bool write_back);

  /// Consulted at each fault *before* servicing it; returning true
  /// preempts: the VIM saves context and calls the preempt handler
  /// instead of mapping the page. Unset = never preempt (legacy path).
  void set_preempt_check(std::function<bool()> check) {
    preempt_check_ = std::move(check);
  }

  /// Invoked when a fault was turned into a preemption; the argument is
  /// the service time already spent (decode + context save).
  void set_preempt_handler(std::function<void(Picoseconds)> handler) {
    on_preempt_ = std::move(handler);
  }

  /// Resolves a foreign ASID to its space (owner of a frame the current
  /// tenant is evicting). Required for multi-tenant operation.
  void set_space_resolver(std::function<AddressSpace*(hw::Asid)> resolver) {
    space_resolver_ = std::move(resolver);
  }

  /// ASID tagging policy (vcopd experiment knob): on, tenant switches
  /// keep entries tagged; off, every switch flushes the whole TLB.
  /// Entries are tagged either way — only switch behaviour changes.
  void set_tlb_tagging(bool enabled) { tlb_tagging_ = enabled; }
  bool tlb_tagging() const { return tlb_tagging_; }

  const VimServiceStats& service_stats() const { return service_stats_; }
  void ResetServiceStats() { service_stats_ = VimServiceStats{}; }

  /// Victim-TLB entries currently holding a (possibly stale) record;
  /// test observability — hits additionally require the frame to be
  /// free with an unchanged generation.
  u32 victim_tlb_live_entries() const;

  /// Called when the end-of-operation service (including write-backs)
  /// completes; the kernel uses it to wake the sleeping process.
  void set_completion_handler(std::function<void()> handler) {
    on_complete_ = std::move(handler);
  }

  /// Called when a run must be aborted (fault on an unmapped object or
  /// out-of-bounds access). The kernel fails the FPGA_EXECUTE call.
  void set_abort_handler(std::function<void(Status)> handler) {
    on_abort_ = std::move(handler);
  }

  /// Optional event timeline (owned by the kernel); nullptr disables.
  void set_timeline(TimelineRecorder* timeline) { timeline_ = timeline; }

  // ----- fault injection and recovery (DESIGN.md §9) -----

  /// Installs (or clears) the fault plan. Threads it into the transfer
  /// engine and enables the interrupt watchdog for non-empty plans.
  /// With no plan (or an empty one) every recovery path is dormant and
  /// the VIM is bit-identical to the fault-free engine.
  void InstallFaultPlan(FaultPlan* plan);
  FaultPlan* fault_plan() { return fault_plan_; }

  /// True when the last failure was a device fault (budget exhaustion,
  /// hang abort, transfer-retry exhaustion) rather than an application
  /// error — vcopd quarantines the tenant on these. Cleared by
  /// PrepareExecution.
  bool fault_abort() const { return fault_abort_; }

  /// Progress signal for the watchdog's hang detector (typically the
  /// coprocessor's cycle counter). Without one the watchdog falls back
  /// to IMU access/fault counts alone.
  void set_progress_probe(std::function<u64()> probe) {
    progress_probe_ = std::move(probe);
  }

  /// Wired to Tlb::set_parity_drop_hook by the kernel: propagates the
  /// dropped entry's dirty bit into the page state (so the follow-up
  /// fault's write-back path stays correct) and counts the drop.
  void OnTlbParityDrop(const hw::TlbEntry& dropped);

  /// OS-side eligibility for the IMU's fast-forward tier (installed as
  /// the IMU's gate by BindImu): declines while VIM background
  /// activity is pending — an overlapped prefetch still in flight, or
  /// a fault service whose restart is still being costed — i.e. while
  /// completion events that will touch translations or frame state are
  /// outstanding. The simulator's pending-event check already
  /// guarantees bit-identity on its own; this veto keeps the fast path
  /// from probing at all inside windows it could never win.
  bool FastForwardSafe() const {
    return !fault_service_pending_ && in_flight_.empty();
  }

  const VimAccounting& accounting() const { return space_->accounting; }
  const VimConfig& config() const { return config_; }
  const CostModel& costs() const { return costs_; }
  PageManager& page_manager() { return pages_; }
  mem::TransferEngine& transfer_engine() { return transfers_; }
  mem::Iommu& iommu() { return iommu_; }
  const mem::Iommu& iommu() const { return iommu_; }

 private:
  enum class MapOutcome {
    kMapped,   // page resident and translated
    kSkipped,  // prefetch declined (no cheap frame available)
    kAborted,  // run failed
  };

  /// Ensures (object, vpage) is resident and mapped in the TLB.
  /// Accumulates transfer/management costs into the out-params.
  /// In prefetch mode the call is best-effort: it uses a free frame or
  /// evicts a *clean* page, but never pays a write-back for a guess.
  MapOutcome EnsureMapped(const MappedObject& object, mem::VirtPage vpage,
                          bool prefetch, Picoseconds& dp_cost,
                          Picoseconds& imu_cost);

  /// Evicts the page in `frame` (write-back iff dirty and not IN). The
  /// frame may belong to a space other than the attached one (vcopd:
  /// the running tenant evicts a switched-out tenant's page); write-back
  /// bookkeeping is charged to the owner, time to the current service.
  void EvictFrame(mem::FrameId frame, Picoseconds& dp_cost,
                  Picoseconds& imu_cost);

  /// Owner space of `asid`: the attached space or, for foreign tags,
  /// whatever the resolver returns (nullptr when unknown).
  AddressSpace* ResolveSpace(hw::Asid asid);

  /// Installs a TLB entry for (object, vpage)->frame, recycling a TLB
  /// slot round-robin when none is free; propagates the recycled
  /// entry's dirty bit into the page state.
  void InstallTlbEntry(hw::ObjectId object, mem::VirtPage vpage,
                       mem::FrameId frame);

  /// Byte length of `vpage` within `object` (short for the last page).
  u32 PageLength(const MappedObject& object, mem::VirtPage vpage) const;

  // ----- per-object page geometry (DESIGN.md §14) -----

  /// Effective page size of `object`: its override or the platform
  /// frame granule.
  u32 ObjectPageBytes(const MappedObject& object) const;
  /// Frames per page of `object` (1 unless it uses superpages).
  u32 ObjectPageSpan(const MappedObject& object) const;
  /// Virtual page of byte `offset` under the object's page size.
  mem::VirtPage ObjectPageOf(const MappedObject& object, u64 offset) const;
  /// Number of pages covering the object.
  u32 ObjectNumPages(const MappedObject& object) const;
  /// User-space address backing `vpage` of `object`.
  mem::UserAddr PageUserAddr(const MappedObject& object,
                             mem::VirtPage vpage) const;

  /// Whether the bound IMU fronts a two-level hierarchy; the shared L2
  /// (null otherwise).
  hw::Tlb* L2() const;

  /// Central enforcement of the Suggest contract: strategies are
  /// advisory, so anything pointing at another object, past the
  /// object's end, or at the faulting page itself is dropped (and
  /// counted) here instead of trusting each strategy.
  std::vector<PrefetchSuggestion> ClampedSuggestions(hw::ObjectId oid,
                                                     mem::VirtPage vpage,
                                                     u32 num_pages);

  /// A speculative frame proved useful (the coprocessor referenced it):
  /// count it and clear the flag. Safe to call on any frame.
  void NoteSpeculativeTouch(mem::FrameId frame);

  /// Called when `state`'s frame leaves the fabric: a frame still
  /// flagged speculative was a wasted guess.
  void SettleSpeculativeRelease(const FrameState& state);

  // ----- software victim TLB -----

  /// Remembers that `frame` (about to be released) holds an intact copy
  /// of (state.asid, state.object, state.vpage).
  void RecordVictim(const FrameState& state, mem::FrameId frame);

  /// A usable victim entry for (object, vpage, asid): its frame is
  /// still free and was not reinstalled since the eviction. Consumes
  /// the entry on a hit.
  std::optional<mem::FrameId> VictimLookup(hw::ObjectId object,
                                           mem::VirtPage vpage,
                                           hw::Asid asid);

  /// Drops every victim entry tagged `asid` (FlushAsid, new execution).
  void InvalidateVictims(hw::Asid asid);

  /// Frame allocation, victim-aware: with the victim TLB enabled,
  /// prefers a free frame no live victim record points at, so a
  /// switched-out tenant's still-warm evictions survive the next
  /// tenant's allocations (a victim cache steers refills away from the
  /// frames it protects). With the TLB disabled this is exactly
  /// PageManager::FindFree, keeping frame choice byte-identical.
  std::optional<mem::FrameId> AllocFrame() const;

  // ----- coalesced write-back -----

  /// Writes every dirty, write-backable page among `frames` back to
  /// user memory as one scatter-gather burst, leaving the pages
  /// resident and *clean* — the caller's per-page sweep then finds no
  /// dirty pages and keeps its exact bookkeeping. Returns the pages
  /// cleaned; on an unrecoverable burst failure the remaining dirty
  /// pages are left for the caller's per-page (retried) path.
  u32 CoalescedWriteback(const std::vector<mem::FrameId>& frames,
                         Picoseconds& dp_cost);

  /// StoreBurst with the same bounded retry-with-backoff as the
  /// per-page transfers; retries resume from the first segment that
  /// did not complete. Segments carry their owning ASID so the IOMMU
  /// path can translate a mixed-tenant scatter-gather list.
  mem::BurstResult StoreBurstRetried(
      std::span<const mem::Iommu::BurstSegment> segments);

  // ----- lazy context write-back -----

  /// Whether `frame` carries a live deferred-dirty mark: the owning
  /// space lazily skipped its write-back at SaveContext and the frame
  /// was neither reused (generation check) nor cleaned since.
  bool DeferredMarked(mem::FrameId frame) const;

  /// Marks `frame` deferred-dirty for its current owner/generation.
  void MarkDeferred(mem::FrameId frame);

  /// Consumes a live mark on `frame` after an on-demand flush (counted
  /// as a deferred write-back); no-op without a live mark.
  void SettleDeferredFlush(mem::FrameId frame);

  /// Pulls the TLB accessed bits into the replacement policy.
  void HarvestRecency();

  void Abort(Status status);

  // ----- fault recovery internals -----

  /// LoadPage/StorePage with bounded retry-with-backoff. On exhaustion
  /// (or budget overrun mid-retry) the result has bus_error set and
  /// last_transfer_failure_ holds the status the caller should fail
  /// with; budget overruns have already Aborted. `asid` selects the
  /// address space the IOMMU translates against (unused off the
  /// zero-copy path). An IOMMU translation fault re-enters the same
  /// bounded retry loop after a fault-decode charge.
  mem::TransferResult LoadPageRetried(hw::Asid asid, mem::UserAddr src,
                                      u32 dst, u32 len);
  mem::TransferResult StorePageRetried(hw::Asid asid, u32 src,
                                       mem::UserAddr dst, u32 len);

  /// Cost of moving one `len`-byte page between user and dual-port
  /// memory on the configured path: the IOMMU's streaming price when
  /// zero-copy is on, the copy-mode price otherwise. Used where the
  /// VIM prices background copies it performs inline (overlapped
  /// prefetch, background cleaning).
  Picoseconds PricePage(u32 len) const;

  /// The IOMMU's page-table walker: true iff `page_base`'s user page
  /// overlaps an object mapped in `asid`'s address space (or the
  /// space's parameter backing). DMA to anything else faults.
  bool IommuWalk(mem::IommuAsid asid, mem::UserAddr page_base);

  /// Drops all in-flight overlapped transfers (run boundary / abort),
  /// releasing any user-page DMA pins they hold. Replaces bare
  /// in_flight_.clear(): pins live in UserMemory and would otherwise
  /// outlive the run.
  void AbandonInFlight();

  /// Counts one recovery action against the per-request budget; on
  /// overrun aborts the run (ResourceExhausted) and returns false.
  bool ChargeFaultRecovery(const char* what);

  /// (Re)starts the interrupt watchdog — only under a non-empty plan.
  void ArmWatchdog();
  void WatchdogTick(u64 epoch);

  CostModel costs_;
  mem::PageGeometry geometry_;
  mem::DualPortRam& dp_ram_;
  mem::UserMemory& user_memory_;
  sim::Simulator& sim_;
  mem::TransferEngine transfers_;
  /// Zero-copy DMA front-end over transfers_ (DESIGN.md §13). Holds the
  /// IO-TLB; disabled (zero entries) unless config_.iommu is on.
  mem::Iommu iommu_;

  VimConfig config_{};
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unique_ptr<Prefetcher> prefetcher_;

  hw::Imu* imu_ = nullptr;
  /// The space whose execution context the VIM is operating on. The
  /// per-execution state that used to live here (object table,
  /// accounting, write-back history, parameter frame) moved into it.
  AddressSpace* space_ = nullptr;
  PageManager pages_;
  u32 tlb_recycle_cursor_ = 0;
  u32 l2_recycle_cursor_ = 0;
  /// Victim-TLB ring (size = config_.victim_tlb_entries; empty when
  /// disabled). `generation` is the frame's install generation at
  /// eviction time; any reinstall bumps it and kills the entry.
  struct VictimEntry {
    bool valid = false;
    hw::Asid asid = 0;
    hw::ObjectId object = 0;
    mem::VirtPage vpage = 0;
    mem::FrameId frame = 0;
    u64 generation = 0;
  };
  std::vector<VictimEntry> victim_tlb_;
  u32 victim_cursor_ = 0;
  ResetScope current_scope_ = ResetScope::kFullReset;
  bool tlb_tagging_ = true;

  /// Overlapped-prefetch state: transfers the CPU is running in the
  /// background while the coprocessor executes.
  struct InFlight {
    hw::ObjectId object;
    mem::VirtPage vpage;
    mem::FrameId frame;
    Picoseconds ready_at;
    /// User-side range the transfer references; DMA-pinned for the
    /// transfer's lifetime when `pinned` (IOMMU mode), so the user
    /// pages cannot be reclaimed under an in-flight DMA.
    mem::UserAddr user_addr = 0;
    u32 user_len = 0;
    bool pinned = false;
  };
  std::vector<InFlight> in_flight_;
  Picoseconds cpu_busy_until_ = 0;
  /// Invalidates stale completion events across executions/aborts.
  u64 epoch_ = 0;

  /// Queues one overlapped prefetch unit for (object, vpage); `tail` is
  /// the running CPU-availability time, advanced past the new unit.
  void ScheduleOverlappedPrefetch(const MappedObject& object,
                                  mem::VirtPage vpage, Picoseconds& tail);

  /// Queues background *cleaning* of dirty, not-recently-touched pages:
  /// writing them back while the coprocessor runs so that later
  /// evictions find clean victims — the page-daemon counterpart of
  /// overlapped prefetch.
  void ScheduleBackgroundCleaning(Picoseconds& tail);

  /// Merged (page-state | live-TLB) dirty bit of `frame`.
  bool FrameDirty(mem::FrameId frame) const;

  /// Frames the coprocessor touched since the previous fault
  /// (refreshed by HarvestRecency); speculation never evicts them.
  std::vector<bool> hot_frames_;

  /// Per-frame deferred-dirty ledger (lazy_writeback). A mark is live
  /// only while the frame still holds the same install generation for
  /// the same ASID — any reuse of the frame invalidates it implicitly.
  struct DeferredMark {
    hw::Asid asid = 0;  // 0 = no mark
    u64 generation = 0;
  };
  std::vector<DeferredMark> deferred_marks_;

  /// Shorthand for the attached space's accounting.
  VimAccounting& acct() { return space_->accounting; }

  // ----- fault recovery state -----
  FaultPlan* fault_plan_ = nullptr;
  /// Set when the current run failed on a device fault; read by vcopd.
  bool fault_abort_ = false;
  /// A ResolveFault event is scheduled but has not fired yet — a second
  /// page-fault edge in this window is a duplicate delivery.
  bool fault_service_pending_ = false;
  /// Status of the most recent failed retried transfer.
  Status last_transfer_failure_ = Status::Ok();
  /// Invalidates stale watchdog ticks (bumped on completion, abort,
  /// preemption, and every re-arm).
  u64 watchdog_epoch_ = 0;
  u64 wd_last_progress_ = 0;
  u32 wd_stuck_ticks_ = 0;
  std::function<u64()> progress_probe_;

  VimServiceStats service_stats_{};
  TimelineRecorder* timeline_ = nullptr;
  std::function<void()> on_complete_;
  std::function<void(Status)> on_abort_;
  std::function<bool()> preempt_check_;
  std::function<void(Picoseconds)> on_preempt_;
  std::function<AddressSpace*(hw::Asid)> space_resolver_;
};

}  // namespace vcop::os
