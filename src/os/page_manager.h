// Bookkeeping for the dual-port RAM's page frames.
//
// "The memory is logically organised in pages, as in typical memory
// systems. Datasets accessed by the coprocessor are mapped to these
// pages. The OS keeps track of the pages each dataset currently
// occupies." (§3.3) PageManager is that tracking: which frame holds
// which (object, virtual page), which frames are free, pinned (the
// parameter page before the coprocessor releases it) or dirty. It is
// pure bookkeeping — transfers and TLB updates are orchestrated by the
// Vim, which owns the policy decisions too.
#pragma once

#include <optional>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "hw/tlb.h"
#include "mem/page.h"

namespace vcop::os {

struct FrameState {
  bool in_use = false;
  /// Pinned frames are never chosen as eviction victims (the parameter
  /// page between EXECUTE and its release by the coprocessor, or a
  /// frame an in-flight DMA references). `pinned` mirrors `pins > 0`;
  /// the refcount lets overlapping pinners (parameter hold + IOMMU DMA)
  /// stack without releasing each other's pin early.
  bool pinned = false;
  u32 pins = 0;
  /// Dirty as accumulated from invalidated TLB entries; the live TLB
  /// entry's dirty bit is merged in by the Vim at eviction time.
  bool dirty = false;
  /// Loaded speculatively (prefetch) and not yet referenced by the
  /// coprocessor. Cleared by the Vim on first demonstrated use; frames
  /// still speculative when released count as wasted prefetches.
  bool speculative = false;
  hw::ObjectId object = 0;
  /// Owning address space (vcopd multi-tenancy); 0 = kernel default.
  hw::Asid asid = 0;
  mem::VirtPage vpage = 0;
  /// Superpage support: an object page larger than the frame granule
  /// occupies `span` consecutive frames. The head frame carries the
  /// mapping; tail frames are marked `continuation` (in_use, pointing
  /// back at `head`) and are never enumerated, evicted or released on
  /// their own.
  u32 span = 1;
  bool continuation = false;
  mem::FrameId head = 0;
};

class PageManager {
 public:
  explicit PageManager(mem::PageGeometry geometry);

  /// Frees everything (start of an EXECUTE).
  void Reset();

  const mem::PageGeometry& geometry() const { return geometry_; }
  u32 num_frames() const { return geometry_.num_frames(); }
  u32 frames_in_use() const { return in_use_; }
  u32 frames_free() const { return num_frames() - in_use_; }

  /// Frame currently holding (asid, object, vpage), if resident.
  std::optional<mem::FrameId> FindResident(hw::ObjectId object,
                                           mem::VirtPage vpage,
                                           hw::Asid asid = 0) const;

  /// Any free frame (lowest index first).
  std::optional<mem::FrameId> FindFree() const;

  /// Lowest `span` consecutive free frames (superpage allocation), if
  /// any such window exists.
  std::optional<mem::FrameId> FindFreeRun(u32 span) const;

  /// Claims frames [frame, frame+span) for (asid, object, vpage).
  /// Precondition: all of them are free. `frame` becomes the head; the
  /// rest become continuation tails.
  void Install(mem::FrameId frame, hw::ObjectId object, mem::VirtPage vpage,
               bool pinned = false, hw::Asid asid = 0, u32 span = 1);

  /// Releases the run headed at `frame` (must be a head, not a tail).
  /// Returns the head's final state (the caller decides about write-back
  /// *before* releasing; this is for bookkeeping symmetry).
  FrameState Release(mem::FrameId frame);

  void MarkDirty(mem::FrameId frame);

  /// Clears the dirty flag after the page was written back in place
  /// (background cleaning).
  void ClearDirty(mem::FrameId frame);

  /// Adds one pin to an in-use frame (refcounted; see FrameState).
  void Pin(mem::FrameId frame);
  /// Drops one pin; the frame becomes evictable at refcount zero.
  void Unpin(mem::FrameId frame);

  /// Flags a freshly installed frame as speculative (prefetched, not
  /// yet used); ClearSpeculative records the first real use.
  void MarkSpeculative(mem::FrameId frame);
  void ClearSpeculative(mem::FrameId frame);

  /// Monotonic per-frame install counter. Bumped every time new content
  /// is installed into the frame, so the victim TLB can tell whether a
  /// freed frame's contents survived untouched since an eviction.
  u64 generation(mem::FrameId frame) const;

  const FrameState& frame(mem::FrameId frame) const;

  /// Eviction candidates: in use and not pinned.
  std::vector<bool> EvictableMask() const;

  /// All in-use frames (for end-of-operation write-back sweeps).
  std::vector<mem::FrameId> InUseFrames() const;

  /// In-use frames owned by `asid` (vcopd's scoped sweeps and context
  /// save/restore only touch the attached tenant's frames).
  std::vector<mem::FrameId> InUseFramesOf(hw::Asid asid) const;

 private:
  FrameState& MutableFrame(mem::FrameId frame);

  mem::PageGeometry geometry_;
  std::vector<FrameState> frames_;
  /// Install counters survive Reset(): a generation must never repeat
  /// within a run or stale victim-TLB entries could false-hit.
  std::vector<u64> generations_;
  u32 in_use_ = 0;
};

}  // namespace vcop::os
