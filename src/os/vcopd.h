// vcopd — the asynchronous multi-tenant coprocessor service daemon.
//
// The paper's system calls give one process exclusive, blocking use of
// the fabric (§3.1); §5 points at the open problem of "managing the
// reconfigurable lattice across tasks". vcopd is that service layer:
// a daemon owning the PLD and serving many tenants at once.
//
//   * Each tenant registers and receives its own AddressSpace (private
//     Process, object table, ASID). FPGA_EXECUTE becomes asynchronous:
//     Submit() validates, enqueues and returns a ticket immediately;
//     completions are observed by Poll()/Wait() or delivered through a
//     callback on the simulated timeline.
//   * Submission queues are bounded (admission control): a full queue
//     rejects with ResourceExhausted instead of growing without bound.
//   * The shared interface TLB is ASID-tagged (hw/tlb.h), so a tenant
//     switch does not force a full flush — entries of switched-out
//     tenants survive until capacity evicts them, and the VIM restores
//     whatever was recycled at resume (Vim::SaveContext/RestoreContext).
//   * Under the fair-share policy (deficit round-robin over tenant
//     weights) a job whose time slice has expired is preempted at its
//     next page-fault boundary: the fault stays latched in the IMU, the
//     interface context is saved, and the fabric is handed to the next
//     tenant. The FIFO policy instead runs jobs to completion, batching
//     by bit-stream to amortise reconfiguration.
//
// Hardware model: vcopd treats the PLD as partially reconfigurable —
// per-job cores and IMU instances front the same physical dual-port RAM
// and the same shared TLB CAM, and switching designs costs the
// configuration-port transfer time (FpgaFabric::PriceConfigure) without
// tearing the platform down. Only one core executes at any instant.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "hw/fabric.h"
#include "hw/imu.h"
#include "hw/tlb.h"
#include "os/address_space.h"
#include "os/kernel.h"
#include "os/scheduler.h"
#include "sim/clock.h"

namespace vcop::os {

using TenantId = u32;
using Ticket = u64;

enum class ServicePolicy : u8 {
  /// Deficit round-robin over tenant weights; running jobs are preempted
  /// at fault boundaries when their slice expires and another tenant is
  /// runnable.
  kFairShare,
  /// Strict arrival order, refined by greedy bit-stream batching (a
  /// queued job matching the loaded design goes first). No preemption.
  kFifoBatch,
};

std::string_view ToString(ServicePolicy policy);

struct VcopdConfig {
  ServicePolicy policy = ServicePolicy::kFairShare;
  /// Per-tenant submission-queue bound (admission control).
  u32 queue_depth = 16;
  /// Fair share: a running job becomes preemptible once its slice has
  /// held the fabric this long (checked at fault boundaries).
  Picoseconds time_slice = 200 * 1000 * 1000;  // 200 us
  /// Fair share: fabric time granted per round and unit of weight.
  Picoseconds quantum = 400 * 1000 * 1000;  // 400 us
  /// Off = flush-on-switch baseline for the ASID experiment. Entries
  /// are tagged either way; only switch behaviour changes.
  bool asid_tagging = true;
  /// ASID tag space (including the reserved kernel tag 0).
  u32 max_asids = 64;
  /// Fair share: when advancing the DRR ring, prefer a runnable tenant
  /// whose design is resident in a configuration slot (it activates
  /// instead of paying a full reconfiguration). Bounded by the skip
  /// budget below so DRR fairness holds. Defaults to the kernel's
  /// `design_affinity` platform key when left off here.
  bool design_affinity = false;
  /// How many consecutive times the strict ring-order choice may be
  /// bypassed in favour of a resident-design tenant before it becomes
  /// mandatory (starvation bound).
  u32 affinity_skip_budget = 4;
};

enum class VcopdJobState : u8 {
  kQueued,
  kRunning,
  kPreempted,  // context saved, fault latched, awaiting resume
  kDone,
  kFailed,
};

/// Completion record of one submitted job.
struct JobResult {
  Ticket ticket = 0;
  TenantId tenant = 0;
  std::string bitstream;
  Status status;
  Picoseconds submitted_at = 0;
  Picoseconds started_at = 0;   // first dispatch
  Picoseconds finished_at = 0;
  u32 preemptions = 0;
  /// Full configuration-port transfers this job paid, across every
  /// slice (initial dispatch AND resumes whose design was evicted
  /// meanwhile — a resume after eviction reconfigures again).
  u32 reconfigurations = 0;
  /// Slot activations this job paid (design was resident, only the
  /// region-select frame was rewritten).
  u32 slot_activations = 0;
  /// Configuration-port time across all slices (full configurations
  /// plus slot activations).
  Picoseconds config_time = 0;
  /// The usual decomposition — with one caveat: `total` spans first
  /// dispatch to completion, so for preempted jobs it includes time
  /// switched out while other tenants held the fabric (t_hw absorbs
  /// that remainder).
  ExecutionReport report;

  Picoseconds turnaround() const { return finished_at - submitted_at; }
  Picoseconds wait() const { return started_at - submitted_at; }
};

struct VcopdStats {
  u64 submitted = 0;
  u64 rejected = 0;   // admission-control rejections (queue full)
  u64 completed = 0;
  u64 failed = 0;
  u64 dispatches = 0;  // slices granted (initial dispatches + resumes)
  u64 preemptions = 0;
  u64 reconfigurations = 0;
  /// Configuration-cache hits that switched a dormant resident slot in
  /// (always 0 with a single slot).
  u64 slot_activations = 0;
  /// Tenants quarantined after a fault-budget or hang abort.
  u64 quarantined = 0;
  Picoseconds total_config_time = 0;
  Picoseconds total_activation_time = 0;
};

class Vcopd {
 public:
  /// The daemon drives the kernel's platform (simulator, VIM, memories,
  /// shared TLB) directly; the kernel must not run its own blocking
  /// FPGA_EXECUTE while vcopd has work in flight.
  explicit Vcopd(Kernel& kernel, VcopdConfig config = {});
  ~Vcopd();

  Vcopd(const Vcopd&) = delete;
  Vcopd& operator=(const Vcopd&) = delete;

  // ----- tenant lifecycle -----

  /// Registers a tenant with a fair-share `weight` >= 1. Fails when the
  /// ASID space is exhausted.
  Result<TenantId> RegisterTenant(std::string name, u32 weight = 1);

  /// Removes a tenant. Fails while the tenant has queued or in-flight
  /// work. Its ASID is scrubbed from the shared TLB and recycled.
  Status UnregisterTenant(TenantId tenant);

  /// Declares / removes an interface object in the tenant's own table.
  Status MapObject(TenantId tenant, hw::ObjectId id, mem::UserAddr addr,
                   u32 size_bytes, u32 elem_width, Direction direction);
  Status UnmapObject(TenantId tenant, hw::ObjectId id);

  /// Re-points an already-mapped object at a new user virtual address
  /// (size/width/direction unchanged). The ring path's object_refs use
  /// this so one mapping can target per-submission buffers; any cached
  /// IO-TLB translations of the tenant are shot down, since the pages
  /// behind its virtual range just changed.
  Status RepointObject(TenantId tenant, hw::ObjectId id,
                       mem::UserAddr addr);

  // ----- asynchronous execution -----

  /// Validates and enqueues a job; returns its ticket without running
  /// anything. `on_complete` (optional) fires on the simulated timeline
  /// at the job's completion instant, before Wait/Poll observe it.
  Result<Ticket> Submit(
      TenantId tenant, const hw::Bitstream& bitstream,
      std::span<const u32> params,
      std::function<void(const JobResult&)> on_complete = nullptr);

  /// Non-blocking completion check: the result once the job reached
  /// kDone/kFailed, nullptr while it is still queued or on the fabric.
  const JobResult* Poll(Ticket ticket) const;

  /// Drives the service until `ticket` completes (other tenants' work
  /// proceeds meanwhile, exactly as the daemon would schedule it).
  Result<JobResult> Wait(Ticket ticket);

  /// Drives the service until every queue is empty.
  Status RunUntilIdle();

  // ----- stepping interface (used by the ring-transport service
  //       layer, os/service.h, which interleaves slice grants with
  //       ring drains on the simulated timeline) -----

  /// Whether any tenant has queued or in-flight work.
  bool HasWork() const;

  /// Grants exactly one slice to the next tenant under the configured
  /// policy; no-op when idle. Unlike Wait/RunUntilIdle this does NOT
  /// restore the kernel's default VIM binding — callers stepping the
  /// daemon finish with RunUntilIdle().
  Status RunOne();

  /// Whether `tenant` has been quarantined (unknown tenants: false).
  bool TenantQuarantined(TenantId tenant) const;

  // ----- introspection -----

  const VcopdStats& stats() const { return stats_; }
  const VcopdConfig& config() const { return config_; }
  Kernel& kernel() { return kernel_; }
  AddressSpace* FindSpace(hw::Asid asid);
  /// Completed work bridged into the scheduler's fairness report
  /// (JobOutcome per finished job, per-pid digests via per_pid()).
  ScheduleReport BuildScheduleReport() const;

 private:
  struct Job {
    Ticket ticket = 0;
    TenantId tenant = 0;
    VcopdJobState state = VcopdJobState::kQueued;
    hw::Bitstream bitstream;
    std::vector<u32> params;
    std::function<void(const JobResult&)> on_complete;
    JobResult result;

    // Per-job hardware, instantiated at first dispatch and kept alive
    // for the daemon's lifetime (clock domains hold raw module
    // pointers; dormant domains cost nothing).
    std::unique_ptr<hw::Coprocessor> core;
    std::unique_ptr<hw::Imu> imu;
    sim::ClockDomain* imu_domain = nullptr;
    sim::ClockDomain* cp_domain = nullptr;

    /// Shared-TLB statistics attributed to this job, accumulated as
    /// deltas over the monotonic counters between slice start/end.
    hw::TlbStats tlb_acc;
  };

  struct Tenant {
    TenantId id = 0;
    bool active = true;
    /// Set when one of the tenant's jobs exhausted its fault budget or
    /// hung the fabric: later Submits fail fast with FailedPrecondition
    /// while every other tenant keeps running.
    bool quarantined = false;
    u32 weight = 1;
    std::unique_ptr<AddressSpace> space;
    std::deque<Job*> queue;       // submitted, not yet dispatched
    Job* inflight = nullptr;      // running or preempted
    i64 deficit = 0;              // fair-share deficit (picoseconds)
    /// Consecutive times design affinity bypassed this tenant when it
    /// was the strict ring-order choice; at the skip budget the bypass
    /// is disallowed (no-starvation bound). Reset when picked.
    u32 affinity_skips = 0;
  };

  Tenant* FindTenant(TenantId id);
  Job* FindJob(Ticket ticket) const;
  bool Runnable(const Tenant& tenant) const;
  bool AnyOtherRunnable(const Tenant* current) const;

  /// Next tenant to grant a slice, honouring the configured policy;
  /// nullptr when no queue has work.
  Tenant* PickNext();

  /// Grants one slice: dispatches (or resumes) the tenant's job, runs
  /// the simulation until it completes or is preempted, and settles
  /// accounting. Returns a non-OK status only for simulation failures.
  Status RunSlice(Tenant& tenant);

  /// Probes the fabric's configuration cache for `job`'s design and
  /// makes it active, paying a full configuration (cache miss) or a
  /// slot activation (hit on a dormant slot) as needed. Fails when the
  /// configuration stream errors (injected CRC fault) — the fabric
  /// keeps its previous design and the job must be failed cleanly.
  Result<Picoseconds> SwitchDesign(Job& job);

  /// Bit-stream the tenant would need next (in-flight job when
  /// preempted, else its queue head). Only called for runnable tenants.
  static const std::string& HeadDesign(const Tenant& tenant);

  void InstantiateHardware(Tenant& tenant, Job& job);
  /// Marks the tenant quarantined (idempotent) after a fault-budget,
  /// hang or non-convergence abort.
  void Quarantine(Tenant& tenant);
  void FinishJob(Tenant& tenant, Job& job, Status status);
  /// Points the VIM back at the kernel's default space / IMU so the
  /// blocking single-tenant path keeps working after the daemon idles.
  void RestoreKernelBinding();

  Kernel& kernel_;
  VcopdConfig config_;
  AsidAllocator asids_;

  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::unique_ptr<Job>> jobs_;  // every job ever submitted
  Ticket next_ticket_ = 0;
  u32 next_pid_ = 2;  // pid 1 is the kernel's default space
  u32 hardware_count_ = 0;

  // The design on the fabric and the resident set live in the fabric's
  // configuration cache (hw::FpgaFabric::active_design/DesignResident).
  Tenant* current_ = nullptr;  // fair-share round-robin position
  Picoseconds slice_started_at_ = 0;
  bool slice_preempted_ = false;  // set by the VIM's preempt handler
  Picoseconds slice_preempt_cost_ = 0;

  VcopdStats stats_;
};

}  // namespace vcop::os
