#include "os/timeline.h"

#include "base/table.h"

namespace vcop::os {

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}
}  // namespace

std::string TimelineRecorder::ToChromeTrace() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TimelineEvent& event : events_) {
    if (!first) out += ',';
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
        JsonEscape(event.name).c_str(), JsonEscape(event.category).c_str(),
        ToMicroseconds(event.start), ToMicroseconds(event.duration),
        event.track);
  }
  out += "]}";
  return out;
}

}  // namespace vcop::os
