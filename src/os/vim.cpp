#include "os/vim.h"

#include <algorithm>

#include "base/log.h"
#include "base/table.h"

namespace vcop::os {

Vim::Vim(const CostModel& costs, mem::PageGeometry geometry,
         mem::DualPortRam& dp_ram, mem::UserMemory& user_memory,
         sim::Simulator& sim)
    : costs_(costs),
      geometry_(geometry),
      dp_ram_(dp_ram),
      user_memory_(user_memory),
      sim_(sim),
      transfers_(mem::AhbModel(costs.ahb, costs.cpu_clock), costs.cpu_clock,
                 mem::CopyMode::kDoubleCopy, costs.sdram_cycles_per_word),
      iommu_(transfers_, costs.cpu_clock),
      pages_(geometry) {
  iommu_.set_walker([this](mem::IommuAsid asid, mem::UserAddr page_base) {
    return IommuWalk(asid, page_base);
  });
  Configure(VimConfig{});
}

void Vim::Configure(const VimConfig& config) {
  config_ = config;
  policy_ = MakePolicy(config.policy, config.seed);
  policy_->Reset(geometry_.num_frames());
  prefetcher_ = MakePrefetcher(config.prefetch, config.prefetch_depth);
  transfers_.set_mode(config.copy_mode);
  iommu_.Configure(config.iommu, config.iotlb_entries,
                   costs_.iommu_walk_cycles);
  victim_tlb_.assign(config.victim_tlb_entries, VictimEntry{});
  victim_cursor_ = 0;
}

bool Vim::IommuWalk(mem::IommuAsid asid, mem::UserAddr page_base) {
  AddressSpace* owner = ResolveSpace(asid);
  if (owner == nullptr) return false;
  const u64 page_end =
      static_cast<u64>(page_base) + mem::kUserPageBytes;
  for (const MappedObject& object : owner->objects().All()) {
    const u64 obj_end =
        static_cast<u64>(object.user_addr) + object.size_bytes;
    if (object.user_addr < page_end && page_base < obj_end) return true;
  }
  return false;
}

Picoseconds Vim::PricePage(u32 len) const {
  return config_.iommu ? transfers_.PriceDirect(len)
                       : transfers_.PriceTransfer(len);
}

void Vim::SetPolicy(std::unique_ptr<ReplacementPolicy> policy) {
  VCOP_CHECK_MSG(policy != nullptr, "null policy");
  policy_ = std::move(policy);
  policy_->Reset(geometry_.num_frames());
}

void Vim::SetPrefetcher(std::unique_ptr<Prefetcher> prefetcher) {
  VCOP_CHECK_MSG(prefetcher != nullptr, "null prefetcher");
  prefetcher_ = std::move(prefetcher);
}

void Vim::BindImu(hw::Imu* imu) {
  imu_ = imu;
  if (imu_ == nullptr) return;
  imu_->set_fastforward_gate([this] { return FastForwardSafe(); });
  imu_->xlat().set_evict_hook([this](const hw::TlbEntry& victim) {
    // A hardware L2->L1 fill displaced a dirty L1 entry whose L2 twin
    // is gone: fold the dirtiness into the page state so the eventual
    // write-back still happens.
    if (victim.frame < pages_.num_frames() &&
        pages_.frame(victim.frame).in_use) {
      pages_.MarkDirty(victim.frame);
    }
    ++service_stats_.hw_tlb_evict_merges;
  });
  imu_->set_param_release_hook([this] {
    if (space_->param_frame.has_value()) {
      pages_.Unpin(*space_->param_frame);
      pages_.Release(*space_->param_frame);
      policy_->OnFreed(*space_->param_frame);
      space_->param_frame.reset();
    }
    // The coprocessor gave the page up for good: a preempted run must
    // not re-materialise it at resume.
    space_->params_live = false;
  });
}

void Vim::AttachSpace(AddressSpace* space) {
  VCOP_CHECK_MSG(space != nullptr, "attaching a null address space");
  space_ = space;
}

AddressSpace* Vim::ResolveSpace(hw::Asid asid) {
  if (space_ != nullptr && space_->asid() == asid) return space_;
  if (space_resolver_) return space_resolver_(asid);
  return nullptr;
}

u32 Vim::PageLength(const MappedObject& object, mem::VirtPage vpage) const {
  const u32 page_bytes = ObjectPageBytes(object);
  const u64 start = static_cast<u64>(vpage) * page_bytes;
  VCOP_CHECK_MSG(start < object.size_bytes, "page beyond object");
  const u64 remaining = object.size_bytes - start;
  return static_cast<u32>(std::min<u64>(remaining, page_bytes));
}

u32 Vim::ObjectPageBytes(const MappedObject& object) const {
  return object.page_bytes != 0 ? object.page_bytes
                                : geometry_.page_bytes();
}

u32 Vim::ObjectPageSpan(const MappedObject& object) const {
  return object.page_bytes != 0 ? geometry_.SpanOf(object.page_bytes) : 1;
}

mem::VirtPage Vim::ObjectPageOf(const MappedObject& object,
                                u64 offset) const {
  return static_cast<mem::VirtPage>(offset / ObjectPageBytes(object));
}

u32 Vim::ObjectNumPages(const MappedObject& object) const {
  return static_cast<u32>(
      DivCeil(object.size_bytes, ObjectPageBytes(object)));
}

mem::UserAddr Vim::PageUserAddr(const MappedObject& object,
                                mem::VirtPage vpage) const {
  return object.user_addr +
         static_cast<mem::UserAddr>(static_cast<u64>(vpage) *
                                    ObjectPageBytes(object));
}

hw::Tlb* Vim::L2() const {
  return imu_ != nullptr ? imu_->xlat().l2() : nullptr;
}

Result<Picoseconds> Vim::PrepareExecution(std::span<const u32> params,
                                          ResetScope scope) {
  if (imu_ == nullptr) {
    return FailedPreconditionError("FPGA_EXECUTE before FPGA_LOAD");
  }
  VCOP_CHECK_MSG(space_ != nullptr, "FPGA_EXECUTE with no space attached");
  const u32 param_bytes = static_cast<u32>(params.size() * 4);
  if (param_bytes > geometry_.page_bytes()) {
    return InvalidArgumentError(StrFormat(
        "%zu parameters exceed the parameter page (%u bytes)",
        params.size(), geometry_.page_bytes()));
  }
  for (const MappedObject& object : objects().All()) {
    if (!user_memory_.Contains(object.user_addr, object.size_bytes)) {
      return InvalidArgumentError(StrFormat(
          "object %u points outside the process address space", object.id));
    }
    if (object.page_bytes != 0) {
      if (object.page_bytes < geometry_.page_bytes()) {
        return InvalidArgumentError(StrFormat(
            "object %u page size %u is below the %u-byte frame granule",
            object.id, object.page_bytes, geometry_.page_bytes()));
      }
      const u32 span = geometry_.SpanOf(object.page_bytes);
      if (span > geometry_.num_frames()) {
        return InvalidArgumentError(StrFormat(
            "object %u page size %u exceeds the dual-port RAM (%u frames "
            "of %u bytes)",
            object.id, object.page_bytes, geometry_.num_frames(),
            geometry_.page_bytes()));
      }
    }
  }

  current_scope_ = scope;
  space_->aborted = false;
  space_->accounting = VimAccounting{};
  fault_abort_ = false;
  fault_service_pending_ = false;
  last_transfer_failure_ = Status::Ok();
  if (scope == ResetScope::kFullReset) {
    pages_.Reset();
    policy_->Reset(geometry_.num_frames());
    prefetcher_->Reset();
    imu_->tlb().InvalidateAll();
    imu_->tlb().ResetStats();
    if (hw::Tlb* l2 = L2(); l2 != nullptr) {
      l2->InvalidateAll();
      l2->ResetStats();
      imu_->xlat().ResetStats();
    }
    imu_->ResetStats();
    tlb_recycle_cursor_ = 0;
    l2_recycle_cursor_ = 0;
    hot_frames_.assign(geometry_.num_frames(), false);
    // A new execution may run over fresh user-space data; every victim
    // record describes frames of the previous run.
    victim_tlb_.assign(victim_tlb_.size(), VictimEntry{});
    victim_cursor_ = 0;
    if (config_.iommu) iommu_.InvalidateAll();
  } else {
    // Shared fabric: clear only this space's residue (defensive — a
    // clean prior end-of-operation leaves none), discarding stale data.
    FlushAsid(space_->asid(), /*write_back=*/false);
  }
  space_->param_frame.reset();
  space_->written_back.clear();
  space_->tlb_snapshot.clear();
  space_->saved_params.assign(params.begin(), params.end());
  space_->params_live = false;
  ++epoch_;
  AbandonInFlight();
  cpu_busy_until_ = 0;

  // Program the object descriptor table: the hardware contract of §3.1
  // ("the hardware designer implements a coprocessor having in mind the
  // programmer-declared data").
  for (const MappedObject& object : objects().All()) {
    imu_->SetObjectWidth(object.id, object.elem_width);
    imu_->SetObjectLimit(object.id,
                         object.size_bytes / object.elem_width);
    imu_->SetObjectPageBytes(object.id, object.page_bytes);
  }
  imu_->SetObjectWidth(hw::kParamObject, 4);
  imu_->SetObjectLimit(hw::kParamObject,
                       static_cast<u32>(params.size()));
  imu_->SetObjectPageBytes(hw::kParamObject, 0);

  u64 setup_cycles =
      costs_.syscall_cycles +
      static_cast<u64>(objects().size()) * costs_.execute_setup_cycles_per_object;
  Picoseconds setup = costs_.Cycles(setup_cycles);

  if (!params.empty()) {
    std::optional<mem::FrameId> frame = AllocFrame();
    if (!frame.has_value() && scope == ResetScope::kAsidScoped) {
      // Other tenants hold every frame: evict a victim for the
      // parameter page (charged to this tenant's setup).
      const std::vector<bool> evictable = pages_.EvictableMask();
      bool any = false;
      for (const bool e : evictable) any = any || e;
      if (!any) {
        return ResourceExhaustedError(
            "no frame available for the parameter page (all pinned)");
      }
      const mem::FrameId victim = policy_->PickVictim(evictable);
      Picoseconds evict_dp = 0;
      Picoseconds evict_imu = 0;
      EvictFrame(victim, evict_dp, evict_imu);
      setup += evict_dp + evict_imu;
      if (space_->aborted || !last_transfer_failure_.ok()) {
        // The victim's write-back failed even after retries: no abort
        // handler is installed at setup time, so the failure is
        // returned as a plain Status for the caller to surface.
        return !last_transfer_failure_.ok()
                   ? last_transfer_failure_
                   : UnavailableError("execution setup failed on a "
                                      "device fault");
      }
      frame = victim;
    }
    VCOP_CHECK_MSG(frame.has_value(), "no frame free after reset");
    for (usize i = 0; i < params.size(); ++i) {
      dp_ram_.WriteWord(mem::DualPortRam::Port::kProcessor,
                        geometry_.FrameBase(*frame) + static_cast<u32>(4 * i),
                        4, params[i]);
    }
    pages_.Install(*frame, hw::kParamObject, 0, /*pinned=*/true,
                   space_->asid());
    policy_->OnInstalled(*frame);
    policy_->OnInstalledAt(*frame, hw::kParamObject, 0);
    InstallTlbEntry(hw::kParamObject, 0, *frame);
    space_->param_frame = frame;
    space_->params_live = true;
    setup += transfers_.PriceTransfer(param_bytes);
  }
  ArmWatchdog();
  return setup;
}

void Vim::OnPageFault() {
  VCOP_CHECK_MSG(imu_ != nullptr, "fault with no IMU bound");
  if (space_->aborted) return;
  // Idempotent fault service: a second edge while the service for the
  // latched fault is already scheduled is a duplicate delivery, and an
  // edge with no pending fault in SR is a spurious re-fire — the real
  // handler reads SR before doing anything, so both are ignored for
  // free. Neither branch can trigger on fault-free hardware.
  if (fault_service_pending_) {
    ++service_stats_.duplicate_irqs_ignored;
    return;
  }
  if (!imu_->fault_pending()) {
    ++service_stats_.spurious_faults_ignored;
    return;
  }

  Picoseconds imu_cost = costs_.Cycles(costs_.interrupt_entry_cycles +
                                       costs_.fault_decode_cycles);
  Picoseconds dp_cost = 0;

  const u32 ar = imu_->ReadRegister(hw::ImuRegister::kAR);
  const hw::ObjectId oid = hw::ArObject(ar);
  const u32 index = hw::ArIndex(ar);

  if (imu_->limit_fault()) {
    Abort(OutOfRangeError(StrFormat(
        "IMU limit register: coprocessor accessed element %u of object "
        "%u beyond its programmed bound",
        index, oid)));
    return;
  }

  if (oid == hw::kParamObject && space_->param_frame.has_value()) {
    // The parameter page is resident but its translation fell out of
    // the TLB (entry recycled, or dropped across a preemption): a pure
    // TLB refill — the parameter object has no user-space backing.
    InstallTlbEntry(hw::kParamObject, 0, *space_->param_frame);
    imu_cost += costs_.Cycles(costs_.tlb_update_cycles);
    ++acct().tlb_refills;
    acct().t_imu += imu_cost;
    acct().fault_service_us.Add(ToMicroseconds(imu_cost));
    hw::Imu* imu = imu_;
    fault_service_pending_ = true;
    const u64 epoch = epoch_;
    sim_.ScheduleAt(sim_.now() + imu_cost, [this, imu, epoch] {
      if (epoch != epoch_) return;
      fault_service_pending_ = false;
      imu->ResolveFault();
    });
    return;
  }

  const MappedObject* object = objects().Find(oid);
  if (object == nullptr) {
    Abort(NotFoundError(StrFormat(
        "coprocessor accessed object %u which was never mapped "
        "(FPGA_MAP_OBJECT missing?)",
        oid)));
    return;
  }
  const u64 offset = static_cast<u64>(index) * object->elem_width;
  if (offset + object->elem_width > object->size_bytes) {
    Abort(OutOfRangeError(StrFormat(
        "coprocessor accessed element %u of object %u, beyond its %u bytes",
        index, oid, object->size_bytes)));
    return;
  }

  if (preempt_check_ && preempt_check_()) {
    // Time-slice expiry at a fault boundary: instead of servicing the
    // fault, save the context and hand the fabric back to the
    // dispatcher. The fault stays latched in the IMU (it never gets
    // ResolveFault); re-entering OnPageFault after RestoreContext
    // services it then.
    acct().t_imu += imu_cost;
    const Picoseconds save = SaveContext();
    if (space_->aborted) return;  // write-back failed mid-save
    ++acct().preemptions;
    if (timeline_ != nullptr) {
      timeline_->Record(
          StrFormat("preempt pid%u obj%u", space_->pid(), oid), "preempt",
          sim_.now(), imu_cost + save, /*track=*/3);
    }
    if (on_preempt_) on_preempt_(imu_cost + save);
    return;
  }

  HarvestRecency();

  const mem::VirtPage vpage = ObjectPageOf(*object, offset);
  hw::Imu* imu = imu_;

  if (config_.overlap_prefetch) {
    // Racing an in-flight background load of this very page: the
    // service just waits for the transfer to land (its translation is
    // installed by the completion event).
    for (const InFlight& unit : in_flight_) {
      if (unit.object == oid && unit.vpage == vpage) {
        NoteSpeculativeTouch(unit.frame);
        const Picoseconds decode_done = sim_.now() + imu_cost;
        const Picoseconds done = std::max(decode_done, unit.ready_at);
        acct().t_imu += imu_cost;
        acct().t_dp += done - decode_done;
        acct().t_dp_wait += done - decode_done;
        acct().fault_service_us.Add(
            ToMicroseconds(done - sim_.now()));
        fault_service_pending_ = true;
        const u64 epoch = epoch_;
        sim_.ScheduleAt(done, [this, imu, epoch] {
          if (epoch != epoch_) return;
          fault_service_pending_ = false;
          imu->ResolveFault();
        });
        return;
      }
    }
    // The handler itself has to wait while the CPU finishes queued
    // background transfer units (copy loops run interrupt-disabled).
    if (cpu_busy_until_ > sim_.now()) {
      const Picoseconds wait = cpu_busy_until_ - sim_.now();
      dp_cost += wait;
      acct().t_dp_wait += wait;
    }
  }

  if (EnsureMapped(*object, vpage, /*prefetch=*/false, dp_cost, imu_cost) ==
      MapOutcome::kAborted) {
    return;
  }

  // Speculative extra pages (§3.3 "speculative actions as prefetching
  // could be used in order to avoid translation misses"). Prefetch is
  // best-effort: it may reuse a free frame or evict a clean page, but
  // never pays a write-back for a guess. In overlapped mode the units
  // run on the CPU *after* the coprocessor resumes.
  const Picoseconds resolution = sim_.now() + imu_cost + dp_cost;
  const u32 num_pages = ObjectNumPages(*object);
  if (config_.overlap_prefetch) {
    Picoseconds tail = std::max(resolution, cpu_busy_until_);
    for (const PrefetchSuggestion& s :
         ClampedSuggestions(oid, vpage, num_pages)) {
      if (pages_.FindResident(s.object, s.vpage).has_value()) continue;
      bool flying = false;
      for (const InFlight& unit : in_flight_) {
        flying = flying || (unit.object == s.object && unit.vpage == s.vpage);
      }
      if (flying) continue;
      ScheduleOverlappedPrefetch(*object, s.vpage, tail);
    }
    // Eager cleaning: the write-backs, not the loads, dominate the
    // serial DP-management time (output pages must all go back to user
    // space); pushing them into the background is where overlap pays.
    ScheduleBackgroundCleaning(tail);
    cpu_busy_until_ = tail;
  } else {
    for (const PrefetchSuggestion& s :
         ClampedSuggestions(oid, vpage, num_pages)) {
      if (pages_.FindResident(s.object, s.vpage).has_value()) continue;
      const MapOutcome outcome = EnsureMapped(*object, s.vpage,
                                              /*prefetch=*/true, dp_cost,
                                              imu_cost);
      if (outcome == MapOutcome::kAborted) return;
      if (outcome == MapOutcome::kSkipped) break;
      ++acct().prefetched_pages;
      ++service_stats_.prefetch_issued;
    }
  }

  acct().t_imu += imu_cost;
  acct().t_dp += dp_cost;
  acct().fault_service_us.Add(ToMicroseconds(imu_cost + dp_cost));
  if (timeline_ != nullptr) {
    timeline_->Record(
        StrFormat("fault obj%u page%u", oid, vpage), "fault", sim_.now(),
        imu_cost + dp_cost, /*track=*/0);
  }

  fault_service_pending_ = true;
  const u64 epoch = epoch_;
  sim_.ScheduleAt(sim_.now() + imu_cost + dp_cost, [this, imu, epoch] {
    if (epoch != epoch_) return;
    fault_service_pending_ = false;
    imu->ResolveFault();
  });
}

void Vim::ScheduleOverlappedPrefetch(const MappedObject& object,
                                     mem::VirtPage vpage,
                                     Picoseconds& tail) {
  // Acquire a frame now (while the coprocessor is stalled, so evicting
  // a clean victim's translation is race-free); fill it later.
  Picoseconds unit_cost = 0;
  const u32 span = ObjectPageSpan(object);
  std::optional<mem::FrameId> frame;
  if (span > 1) {
    // Superpage speculation is strictly best-effort: take a free
    // contiguous window or decline — never evict for a guess.
    frame = pages_.FindFreeRun(span);
    if (!frame.has_value()) return;
  } else {
    frame = AllocFrame();
  }
  if (!frame.has_value()) {
    std::vector<bool> evictable = pages_.EvictableMask();
    for (mem::FrameId f = 0; f < evictable.size(); ++f) {
      if (!evictable[f]) continue;
      if (FrameDirty(f) || (f < hot_frames_.size() && hot_frames_[f])) {
        evictable[f] = false;
      }
    }
    bool any = false;
    for (const bool e : evictable) any = any || e;
    if (!any) return;  // nothing cheap to speculate into
    const mem::FrameId victim = policy_->PickVictim(evictable);
    Picoseconds evict_dp = 0;
    EvictFrame(victim, evict_dp, unit_cost);
    VCOP_CHECK_MSG(evict_dp == 0, "clean eviction must not write back");
    frame = victim;
  }
  pages_.Install(*frame, object.id, vpage, /*pinned=*/true, /*asid=*/0,
                 span);
  pages_.MarkSpeculative(*frame);
  policy_->OnInstalled(*frame);
  policy_->OnInstalledAt(*frame, object.id, vpage);

  const u32 len = PageLength(object, vpage);
  const bool needs_load =
      object.direction != Direction::kOut ||
      space_->written_back.count({object.id, vpage}) != 0;
  unit_cost +=
      costs_.Cycles(costs_.tlb_update_cycles + costs_.page_table_cycles);
  if (needs_load) unit_cost += PricePage(len);

  const mem::UserAddr user_src = PageUserAddr(object, vpage);
  // Under the IOMMU the transfer references the user pages directly
  // until it lands: pin them so reclamation cannot pull the source out
  // from under an in-flight DMA.
  const bool pin = config_.iommu && needs_load;
  if (pin) iommu_.PinRange(user_memory_, user_src, len);

  tail = std::max(tail, sim_.now()) + unit_cost;
  in_flight_.push_back(
      InFlight{object.id, vpage, *frame, tail, user_src, len, pin});
  acct().t_dp_overlapped += unit_cost;
  ++acct().prefetched_pages;
  ++service_stats_.prefetch_issued;
  if (timeline_ != nullptr) {
    timeline_->Record(
        StrFormat("prefetch obj%u page%u", object.id, vpage), "overlap",
        tail - unit_cost, unit_cost, /*track=*/2);
  }

  const u64 epoch = epoch_;
  const mem::FrameId f = *frame;
  const hw::ObjectId oid = object.id;
  const mem::UserAddr src = user_src;
  sim_.ScheduleAt(tail, [this, epoch, f, oid, vpage, src, len, needs_load,
                         pin] {
    if (epoch != epoch_) return;  // run ended or aborted meanwhile
    if (needs_load) {
      dp_ram_.Write(mem::DualPortRam::Port::kProcessor,
                    geometry_.FrameBase(f), user_memory_.View(src, len));
      ++acct().loads;
      acct().bytes_loaded += len;
    }
    if (pin) iommu_.UnpinRange(user_memory_, src, len);
    pages_.Unpin(f);
    InstallTlbEntry(oid, vpage, f);
    for (usize i = 0; i < in_flight_.size(); ++i) {
      if (in_flight_[i].frame == f) {
        in_flight_.erase(in_flight_.begin() + static_cast<long>(i));
        break;
      }
    }
  });
}

Vim::MapOutcome Vim::EnsureMapped(const MappedObject& object,
                                  mem::VirtPage vpage, bool prefetch,
                                  Picoseconds& dp_cost,
                                  Picoseconds& imu_cost) {
  if (const std::optional<mem::FrameId> resident =
          pages_.FindResident(object.id, vpage, space_->asid())) {
    // Soft fault: the page is in the dual-port RAM but its translation
    // fell out of the TLB (possible when tlb_entries < num_frames).
    NoteSpeculativeTouch(*resident);
    InstallTlbEntry(object.id, vpage, *resident);
    imu_cost += costs_.Cycles(costs_.tlb_update_cycles);
    ++acct().tlb_refills;
    return MapOutcome::kMapped;
  }

  const u32 span = ObjectPageSpan(object);
  // The victim TLB records single frames; superpage runs skip it (a
  // tail frame's reuse would not bump the head's generation, so a
  // record could false-hit on a clobbered run).
  if (!prefetch && !victim_tlb_.empty() && span == 1) {
    if (const std::optional<mem::FrameId> vf =
            VictimLookup(object.id, vpage, space_->asid())) {
      // The evicted copy survived untouched in a still-free frame:
      // re-adopt it and skip the whole load path.
      ++acct().faults;
      ++acct().victim_tlb_hits;
      ++service_stats_.victim_tlb_hits;
      pages_.Install(*vf, object.id, vpage, /*pinned=*/false,
                     space_->asid());
      policy_->OnInstalled(*vf);
      policy_->OnInstalledAt(*vf, object.id, vpage);
      InstallTlbEntry(object.id, vpage, *vf);
      imu_cost +=
          costs_.Cycles(costs_.tlb_update_cycles + costs_.page_table_cycles);
      return MapOutcome::kMapped;
    }
    ++acct().victim_tlb_misses;
    ++service_stats_.victim_tlb_misses;
  }

  std::optional<mem::FrameId> frame;
  if (span > 1) {
    frame = pages_.FindFreeRun(span);
    if (!frame.has_value()) {
      if (prefetch) return MapOutcome::kSkipped;
      // Deterministic window scan: pick the span-wide window whose
      // clearing evicts the fewest *hot* mappings (pages the
      // coprocessor touched since the last recency harvest), then the
      // fewest mappings overall (ties: lowest start), and evict those
      // heads in ascending order. Windows overlapping a pinned frame
      // are infeasible. Hot-avoidance is what keeps two streaming
      // superpage objects from ping-ponging each other out of memory:
      // without it the scan would deterministically clear the lowest
      // window every fault, which is exactly where the other object's
      // active page lives.
      const u32 num_frames = geometry_.num_frames();
      std::optional<mem::FrameId> best_start;
      usize best_hot = 0;
      usize best_cost = 0;
      for (mem::FrameId start = 0; start + span <= num_frames; ++start) {
        std::set<mem::FrameId> heads;
        bool feasible = true;
        for (mem::FrameId f = start; f < start + span; ++f) {
          const FrameState& s = pages_.frame(f);
          if (!s.in_use) continue;
          const mem::FrameId head = s.continuation ? s.head : f;
          if (pages_.frame(head).pinned) {
            feasible = false;
            break;
          }
          heads.insert(head);
        }
        if (!feasible) continue;
        usize hot = 0;
        for (const mem::FrameId h : heads) {
          if (h < hot_frames_.size() && hot_frames_[h]) ++hot;
        }
        if (!best_start.has_value() || hot < best_hot ||
            (hot == best_hot && heads.size() < best_cost)) {
          best_start = start;
          best_hot = hot;
          best_cost = heads.size();
        }
      }
      if (!best_start.has_value()) {
        Abort(ResourceExhaustedError(StrFormat(
            "no %u-frame window available for a %u-byte superpage "
            "(pinned frames fragment the dual-port RAM)",
            span, ObjectPageBytes(object))));
        return MapOutcome::kAborted;
      }
      std::set<mem::FrameId> victims;
      for (mem::FrameId f = *best_start; f < *best_start + span; ++f) {
        const FrameState& s = pages_.frame(f);
        if (s.in_use) victims.insert(s.continuation ? s.head : f);
      }
      for (const mem::FrameId v : victims) {
        EvictFrame(v, dp_cost, imu_cost);
        if (space_->aborted) return MapOutcome::kAborted;
      }
      frame = best_start;
    }
  } else {
    frame = AllocFrame();
  }
  if (!frame.has_value()) {
    std::vector<bool> evictable = pages_.EvictableMask();
    if (prefetch) {
      // Never pay a write-back for speculation, and never displace a
      // page the coprocessor is actively using: only clean, cold
      // victims.
      for (mem::FrameId f = 0; f < evictable.size(); ++f) {
        if (!evictable[f]) continue;
        if (FrameDirty(f) ||
            (f < hot_frames_.size() && hot_frames_[f])) {
          evictable[f] = false;
        }
      }
    }
    bool any = false;
    for (const bool e : evictable) any = any || e;
    if (!any) {
      if (prefetch) return MapOutcome::kSkipped;
      Abort(ResourceExhaustedError(
          "no evictable interface page (all frames pinned)"));
      return MapOutcome::kAborted;
    }
    const mem::FrameId victim = policy_->PickVictim(evictable);
    EvictFrame(victim, dp_cost, imu_cost);
    if (space_->aborted) return MapOutcome::kAborted;
    frame = victim;
  }
  if (!prefetch) ++acct().faults;

  const u32 len = PageLength(object, vpage);
  // The OUT hint skips the load only on a page's *first* touch; once a
  // page has been written back, later faults must reload it or the
  // final write-back would clobber earlier results with stale bytes.
  const bool needs_load =
      object.direction != Direction::kOut ||
      space_->written_back.count({object.id, vpage}) != 0;
  if (needs_load) {
    const mem::TransferResult r = LoadPageRetried(
        space_->asid(), PageUserAddr(object, vpage),
        geometry_.FrameBase(*frame), len);
    dp_cost += r.time;
    if (r.bus_error) {
      if (!space_->aborted) Abort(last_transfer_failure_);
      return MapOutcome::kAborted;
    }
    ++acct().loads;
    acct().bytes_loaded += len;
  }
  pages_.Install(*frame, object.id, vpage, /*pinned=*/false,
                 space_->asid(), span);
  if (prefetch) pages_.MarkSpeculative(*frame);
  policy_->OnInstalled(*frame);
  policy_->OnInstalledAt(*frame, object.id, vpage);
  InstallTlbEntry(object.id, vpage, *frame);
  imu_cost +=
      costs_.Cycles(costs_.tlb_update_cycles + costs_.page_table_cycles);
  return MapOutcome::kMapped;
}

void Vim::EvictFrame(mem::FrameId frame, Picoseconds& dp_cost,
                     Picoseconds& imu_cost) {
  // Fold the live TLB entry's dirty bit into the page state first. The
  // accessed/dirty bits also settle the speculation verdict for a
  // prefetched frame: referenced since the last harvest counts as a
  // useful guess.
  if (const std::optional<u32> e = imu_->tlb().FindByFrame(frame)) {
    const hw::TlbEntry old = imu_->tlb().Invalidate(*e);
    if (old.dirty) pages_.MarkDirty(frame);
    if (old.accessed || old.dirty) NoteSpeculativeTouch(frame);
  }
  if (hw::Tlb* l2 = L2(); l2 != nullptr) {
    if (const std::optional<u32> e2 = l2->FindByFrame(frame)) {
      const hw::TlbEntry old = l2->Invalidate(*e2);
      if (old.dirty) pages_.MarkDirty(frame);
      if (old.accessed || old.dirty) NoteSpeculativeTouch(frame);
    }
  }
  if (config_.lazy_writeback && config_.coalesce_writeback &&
      DeferredMarked(frame)) {
    // The victim carries a deferred write-back: flush the owner's whole
    // deferred set in one scatter-gather burst while the bus is ours —
    // its other lazy pages would fault in here one by one otherwise.
    // The per-page path below then finds this frame clean (a failed or
    // single-page burst leaves it for the per-page retried store).
    CoalescedWriteback(pages_.InUseFramesOf(pages_.frame(frame).asid),
                       dp_cost);
  }
  const FrameState state = pages_.frame(frame);
  AddressSpace* owner = ResolveSpace(state.asid);
  VCOP_CHECK_MSG(owner != nullptr, "evicting a frame of an unknown space");
  const MappedObject* object = owner->objects().Find(state.object);
  VCOP_CHECK_MSG(object != nullptr,
                 "evicting a frame of an unknown object");
  if (state.dirty) {
    if (object->direction == Direction::kIn) {
      // The hint says the coprocessor only reads this object; honour it
      // and drop the (buggy) writes, but record that it happened.
      ++owner->accounting.dirty_in_pages_dropped;
    } else {
      // Write-back bookkeeping goes to the owning space (its data left
      // the fabric); the transfer time extends the *current* service.
      const u32 len = PageLength(*object, state.vpage);
      const mem::TransferResult r = StorePageRetried(
          state.asid, geometry_.FrameBase(frame),
          PageUserAddr(*object, state.vpage), len);
      dp_cost += r.time;
      if (r.bus_error) {
        // The dirty page cannot leave the fabric: its data would be
        // lost, so the run must fail (callers notice space_->aborted,
        // PrepareExecution notices last_transfer_failure_).
        if (!space_->aborted) Abort(last_transfer_failure_);
        pages_.Release(frame);
        policy_->OnFreed(frame);
        ++acct().evictions;
        return;
      }
      ++owner->accounting.writebacks;
      owner->accounting.bytes_written_back += len;
      owner->written_back.insert({state.object, state.vpage});
      SettleDeferredFlush(frame);
      // The write-back just synchronised the frame with user memory, so
      // the evicted copy is a valid victim.
      RecordVictim(pages_.frame(frame), frame);
    }
  } else {
    // Clean page: the frame already matches what a reload would produce
    // (or, for a never-written OUT page, is as undefined as a reload).
    RecordVictim(state, frame);
  }
  SettleSpeculativeRelease(pages_.frame(frame));
  pages_.Release(frame);
  policy_->OnFreed(frame);
  ++acct().evictions;
  imu_cost += costs_.Cycles(costs_.page_table_cycles);
}

void Vim::InstallTlbEntry(hw::ObjectId object, mem::VirtPage vpage,
                          mem::FrameId frame) {
  hw::Tlb& tlb = imu_->tlb();
  std::optional<u32> slot = tlb.FindFree();
  if (!slot.has_value()) {
    // Recycle a TLB slot round-robin (entries are a cache over the page
    // table when the TLB is smaller than the frame count); keep the
    // recycled entry's dirty information in the page state.
    const u32 victim = tlb_recycle_cursor_++ % tlb.num_entries();
    const hw::TlbEntry old = tlb.Invalidate(victim);
    if (old.valid && old.dirty && pages_.frame(old.frame).in_use) {
      pages_.MarkDirty(old.frame);
    }
    slot = victim;
  }
  tlb.Install(*slot, object, vpage, frame, space_->asid());

  // Two-level mode: OS installs fill both levels, so a later L1
  // recycling can be repaired by a hardware L2->L1 fill instead of a
  // full fault service.
  hw::Tlb* l2 = L2();
  if (l2 == nullptr) return;
  const hw::Asid asid = space_->asid();
  if (const std::optional<u32> existing = l2->Probe(object, vpage, asid)) {
    if (l2->entry(*existing).frame == frame) return;  // already current
    const hw::TlbEntry old = l2->Invalidate(*existing);
    if (old.dirty && pages_.frame(old.frame).in_use) {
      pages_.MarkDirty(old.frame);
    }
  }
  std::optional<u32> l2_slot = l2->FindFree();
  if (!l2_slot.has_value()) {
    const u32 victim = l2_recycle_cursor_++ % l2->num_entries();
    const hw::TlbEntry old = l2->Invalidate(victim);
    if (old.valid && old.dirty && pages_.frame(old.frame).in_use) {
      pages_.MarkDirty(old.frame);
    }
    l2_slot = victim;
  }
  l2->Install(*l2_slot, object, vpage, frame, asid);
}

void Vim::ScheduleBackgroundCleaning(Picoseconds& tail) {
  // Budget per fault service: a couple of pages, so a burst of dirty
  // pages cannot starve fault handling behind a long copy queue.
  u32 budget = 2;
  for (const mem::FrameId f : pages_.InUseFrames()) {
    if (budget == 0) break;
    const FrameState state = pages_.frame(f);
    if (state.pinned) continue;
    if (f < hot_frames_.size() && hot_frames_[f]) continue;
    if (!FrameDirty(f)) continue;
    bool flying = false;
    for (const InFlight& unit : in_flight_) {
      flying = flying || unit.frame == f;
    }
    if (flying) continue;
    const MappedObject* object = space_->objects().Find(state.object);
    if (object == nullptr || object->direction == Direction::kIn) continue;

    const u32 len = PageLength(*object, state.vpage);
    const Picoseconds unit_cost =
        PricePage(len) + costs_.Cycles(costs_.page_table_cycles);
    tail = std::max(tail, sim_.now()) + unit_cost;
    acct().t_dp_overlapped += unit_cost;
    --budget;
    if (timeline_ != nullptr) {
      timeline_->Record(
          StrFormat("clean obj%u page%u", state.object, state.vpage),
          "overlap", tail - unit_cost, unit_cost, /*track=*/2);
    }

    const u64 epoch = epoch_;
    const hw::ObjectId oid = state.object;
    const mem::VirtPage vpage = state.vpage;
    const mem::UserAddr dst = PageUserAddr(*object, vpage);
    sim_.ScheduleAt(tail, [this, epoch, f, oid, vpage, dst, len] {
      if (epoch != epoch_) return;
      const FrameState now_state = pages_.frame(f);
      // The frame may have been evicted/repurposed meanwhile — the
      // eviction already wrote the data back synchronously. A *pinned*
      // match is the subtle case: the page was evicted and the frame
      // re-reserved by an in-flight prefetch of the same page, whose
      // content has not arrived yet — copying it out would publish
      // garbage over the eviction's correct write-back.
      if (!now_state.in_use || now_state.pinned ||
          now_state.object != oid || now_state.vpage != vpage) {
        return;
      }
      std::vector<u8> buf(len);
      dp_ram_.Read(mem::DualPortRam::Port::kProcessor,
                   geometry_.FrameBase(f), buf);
      user_memory_.WriteBytes(dst, buf);
      space_->written_back.insert({oid, vpage});
      pages_.ClearDirty(f);
      if (const std::optional<u32> entry = imu_->tlb().FindByFrame(f)) {
        imu_->tlb().ClearDirty(*entry);
      }
      if (hw::Tlb* l2 = L2(); l2 != nullptr) {
        if (const std::optional<u32> entry = l2->FindByFrame(f)) {
          l2->ClearDirty(*entry);
        }
      }
      ++acct().cleaned_pages;
      acct().bytes_written_back += len;
    });
  }
}

void Vim::HarvestRecency() {
  hot_frames_.assign(geometry_.num_frames(), false);
  for (const mem::FrameId f : imu_->tlb().HarvestAccessed()) {
    policy_->OnTouched(f);
    NoteSpeculativeTouch(f);
    if (f < hot_frames_.size()) hot_frames_[f] = true;
  }
  // Two-level mode: translations recycled out of the micro-TLB keep
  // being accessed through hardware L2 fills, so the L2's accessed
  // bits are part of the recency picture (in single-level mode L2() is
  // null and this is a no-op).
  if (hw::Tlb* l2 = L2(); l2 != nullptr) {
    for (const mem::FrameId f : l2->HarvestAccessed()) {
      policy_->OnTouched(f);
      NoteSpeculativeTouch(f);
      if (f < hot_frames_.size()) hot_frames_[f] = true;
    }
  }
}

bool Vim::FrameDirty(mem::FrameId frame) const {
  if (pages_.frame(frame).dirty) return true;
  const std::optional<u32> entry = imu_->tlb().FindByFrame(frame);
  if (entry.has_value() && imu_->tlb().entry(*entry).dirty) return true;
  if (const hw::Tlb* l2 = L2(); l2 != nullptr) {
    const std::optional<u32> e2 = l2->FindByFrame(frame);
    if (e2.has_value() && l2->entry(*e2).dirty) return true;
  }
  return false;
}

void Vim::OnEndOfOperation() {
  VCOP_CHECK_MSG(imu_ != nullptr, "end-of-operation with no IMU bound");
  if (space_->aborted) return;
  // Duplicate-delivery safety: the sweep acknowledges the interrupt
  // (AckEnd clears SR.end), so a second edge finds the bit clear and is
  // ignored — re-running the sweep would wake the caller twice.
  if ((imu_->ReadRegister(hw::ImuRegister::kSR) & hw::kSrEndPending) == 0) {
    ++service_stats_.duplicate_irqs_ignored;
    return;
  }
  ++watchdog_epoch_;  // the run is over; kill any pending watchdog tick

  // Abandon any still-flying speculative transfers.
  ++epoch_;
  AbandonInFlight();

  Picoseconds imu_cost = costs_.Cycles(costs_.interrupt_entry_cycles);
  Picoseconds dp_cost = 0;
  // The handler runs after any in-progress background copy completes.
  if (cpu_busy_until_ > sim_.now()) {
    const Picoseconds wait = cpu_busy_until_ - sim_.now();
    dp_cost += wait;
    acct().t_dp_wait += wait;
  }
  cpu_busy_until_ = 0;

  // Merge live dirty bits, then drop the translations. In the classic
  // single-tenant path everything on the fabric belongs to this run; in
  // the vcopd (ASID-scoped) path only this space's entries and frames
  // are touched, so other tenants' working sets survive the switch.
  hw::Tlb& tlb = imu_->tlb();
  if (current_scope_ == ResetScope::kFullReset) {
    for (u32 i = 0; i < tlb.num_entries(); ++i) {
      const hw::TlbEntry e = tlb.entry(i);
      if (!e.valid) continue;
      if (e.dirty && pages_.frame(e.frame).in_use) {
        pages_.MarkDirty(e.frame);
      }
      if (e.accessed || e.dirty) NoteSpeculativeTouch(e.frame);
    }
    tlb.InvalidateAll();
    if (hw::Tlb* l2 = L2(); l2 != nullptr) {
      for (u32 i = 0; i < l2->num_entries(); ++i) {
        const hw::TlbEntry e = l2->entry(i);
        if (!e.valid) continue;
        if (e.dirty && pages_.frame(e.frame).in_use) {
          pages_.MarkDirty(e.frame);
        }
        if (e.accessed || e.dirty) NoteSpeculativeTouch(e.frame);
      }
      l2->InvalidateAll();
    }

    if (config_.coalesce_writeback) {
      // One scatter-gather burst cleans every dirty page first; the
      // sweep below then finds nothing left to write back and keeps
      // its exact bookkeeping.
      CoalescedWriteback(pages_.InUseFrames(), dp_cost);
      if (space_->aborted) {
        acct().t_imu += imu_cost;
        acct().t_dp += dp_cost;
        return;
      }
    }

    // "The interface manager copies back to user space all the dirty data
    // currently residing in the dual-port memory." (§3.3)
    for (const mem::FrameId f : pages_.InUseFrames()) {
      const FrameState state = pages_.frame(f);
      SettleSpeculativeRelease(state);
      if (state.object == hw::kParamObject) {
        if (state.pinned) pages_.Unpin(f);
        pages_.Release(f);
        space_->param_frame.reset();
        continue;
      }
      const MappedObject* object = space_->objects().Find(state.object);
      VCOP_CHECK_MSG(object != nullptr, "resident page of unknown object");
      if (state.dirty) {
        if (object->direction == Direction::kIn) {
          ++acct().dirty_in_pages_dropped;
        } else {
          const u32 len = PageLength(*object, state.vpage);
          const mem::TransferResult r = StorePageRetried(
              state.asid, geometry_.FrameBase(f),
              PageUserAddr(*object, state.vpage), len);
          dp_cost += r.time;
          if (r.bus_error) {
            acct().t_imu += imu_cost;
            acct().t_dp += dp_cost;
            if (!space_->aborted) Abort(last_transfer_failure_);
            return;
          }
          ++acct().writebacks;
          acct().bytes_written_back += len;
        }
      }
      pages_.Release(f);
      policy_->OnFreed(f);
      imu_cost += costs_.Cycles(costs_.page_table_cycles);
    }
  } else {
    const hw::Asid asid = space_->asid();
    for (u32 i = 0; i < tlb.num_entries(); ++i) {
      const hw::TlbEntry e = tlb.entry(i);
      if (!e.valid || e.asid != asid) continue;
      if (e.dirty && pages_.frame(e.frame).in_use) {
        pages_.MarkDirty(e.frame);
      }
      if (e.accessed || e.dirty) NoteSpeculativeTouch(e.frame);
    }
    if (hw::Tlb* l2 = L2(); l2 != nullptr) {
      for (u32 i = 0; i < l2->num_entries(); ++i) {
        const hw::TlbEntry e = l2->entry(i);
        if (!e.valid || e.asid != asid) continue;
        if (e.dirty && pages_.frame(e.frame).in_use) {
          pages_.MarkDirty(e.frame);
        }
        if (e.accessed || e.dirty) NoteSpeculativeTouch(e.frame);
      }
      if (tlb_tagging_) {
        l2->InvalidateAsid(asid);
      } else {
        l2->InvalidateAll();
      }
    }
    if (tlb_tagging_) {
      tlb.InvalidateAsid(asid);
      ++service_stats_.tlb_flushes_avoided;
    } else {
      tlb.InvalidateAll();
      ++service_stats_.full_tlb_flushes;
    }

    if (config_.coalesce_writeback) {
      CoalescedWriteback(pages_.InUseFramesOf(asid), dp_cost);
      if (space_->aborted) {
        acct().t_imu += imu_cost;
        acct().t_dp += dp_cost;
        return;
      }
    }

    for (const mem::FrameId f : pages_.InUseFramesOf(asid)) {
      const FrameState state = pages_.frame(f);
      SettleSpeculativeRelease(state);
      if (state.object == hw::kParamObject) {
        if (state.pinned) pages_.Unpin(f);
        pages_.Release(f);
        policy_->OnFreed(f);
        space_->param_frame.reset();
        continue;
      }
      const MappedObject* object = space_->objects().Find(state.object);
      VCOP_CHECK_MSG(object != nullptr, "resident page of unknown object");
      if (state.dirty) {
        if (object->direction == Direction::kIn) {
          ++acct().dirty_in_pages_dropped;
        } else {
          const u32 len = PageLength(*object, state.vpage);
          const mem::TransferResult r = StorePageRetried(
              state.asid, geometry_.FrameBase(f),
              PageUserAddr(*object, state.vpage), len);
          dp_cost += r.time;
          if (r.bus_error) {
            acct().t_imu += imu_cost;
            acct().t_dp += dp_cost;
            if (!space_->aborted) Abort(last_transfer_failure_);
            return;
          }
          ++acct().writebacks;
          acct().bytes_written_back += len;
        }
      }
      pages_.Release(f);
      policy_->OnFreed(f);
      imu_cost += costs_.Cycles(costs_.page_table_cycles);
    }
    space_->params_live = false;
  }

  // The run's DMA window is over: shoot down its IO-TLB entries so
  // nothing can translate through them afterwards (the write-back
  // sweep above was the last legitimate user).
  if (config_.iommu) {
    if (current_scope_ == ResetScope::kFullReset) {
      iommu_.InvalidateAll();
    } else {
      iommu_.InvalidateAsid(space_->asid());
    }
  }

  imu_->AckEnd();
  const Picoseconds wake = costs_.Cycles(costs_.wakeup_cycles);
  acct().t_imu += imu_cost;
  acct().t_dp += dp_cost;
  acct().t_wakeup += wake;
  if (timeline_ != nullptr) {
    timeline_->Record("end-of-operation sweep", "transfer", sim_.now(),
                      imu_cost + dp_cost + wake, /*track=*/0);
  }

  sim_.ScheduleAt(sim_.now() + imu_cost + dp_cost + wake, [this] {
    if (on_complete_) on_complete_();
  });
}

Picoseconds Vim::SaveContext() {
  VCOP_CHECK_MSG(imu_ != nullptr, "context save with no IMU bound");
  VCOP_CHECK_MSG(space_ != nullptr, "context save with no space attached");
  const hw::Asid asid = space_->asid();
  hw::Tlb& tlb = imu_->tlb();
  Picoseconds dp_cost = 0;
  Picoseconds imu_cost = costs_.Cycles(costs_.context_save_cycles);

  // The tenant leaves the fabric; its watchdog must not fire into some
  // other tenant's slice. RestoreContext re-arms.
  ++watchdog_epoch_;

  HarvestRecency();

  // Release the pinned parameter frame; a resume re-materialises it from
  // the saved words (params_live stays true), so holding a pinned frame
  // across the switched-out window would starve the other tenants.
  if (space_->param_frame.has_value()) {
    if (const std::optional<u32> entry =
            tlb.Probe(hw::kParamObject, 0, asid)) {
      tlb.Invalidate(*entry);
    }
    if (hw::Tlb* l2 = L2(); l2 != nullptr) {
      if (const std::optional<u32> e2 =
              l2->Probe(hw::kParamObject, 0, asid)) {
        l2->Invalidate(*e2);
      }
    }
    pages_.Unpin(*space_->param_frame);
    pages_.Release(*space_->param_frame);
    policy_->OnFreed(*space_->param_frame);
    space_->param_frame.reset();
    imu_cost += costs_.Cycles(costs_.page_table_cycles);
  }

  space_->tlb_snapshot.clear();
  if (tlb_tagging_) {
    // Tagged mode: translations stay installed (that is the point of the
    // ASID), but we snapshot them so a resume can re-install whatever an
    // intervening tenant recycled. Dirty pages are written back eagerly,
    // so a foreign eviction of one of our frames while we are switched
    // out is a free drop.
    for (u32 i = 0; i < tlb.num_entries(); ++i) {
      const hw::TlbEntry e = tlb.entry(i);
      if (!e.valid || e.asid != asid || e.object == hw::kParamObject) {
        continue;
      }
      if (e.dirty && pages_.frame(e.frame).in_use) {
        pages_.MarkDirty(e.frame);
      }
      space_->tlb_snapshot.push_back(
          TlbSnapshotEntry{e.object, e.vpage, e.frame});
    }
    if (hw::Tlb* l2 = L2(); l2 != nullptr) {
      // L2 holds translations an L1 recycle pushed out; snapshot the
      // ones L1 no longer has so a resume restores the full set.
      for (u32 i = 0; i < l2->num_entries(); ++i) {
        const hw::TlbEntry e = l2->entry(i);
        if (!e.valid || e.asid != asid || e.object == hw::kParamObject) {
          continue;
        }
        if (e.dirty && pages_.frame(e.frame).in_use) {
          pages_.MarkDirty(e.frame);
        }
        bool already = false;
        for (const TlbSnapshotEntry& snap : space_->tlb_snapshot) {
          if (snap.object == e.object && snap.vpage == e.vpage) {
            already = true;
            break;
          }
        }
        if (!already) {
          space_->tlb_snapshot.push_back(
              TlbSnapshotEntry{e.object, e.vpage, e.frame});
        }
      }
    }
    if (config_.lazy_writeback) {
      // Lazy mode: defer the dirty sweep entirely. The frames stay
      // resident-and-dirty under the deferred ledger; a foreign
      // eviction, a coalesced burst, or FlushAsid flushes them on
      // demand (EvictFrame already charges the write-back bookkeeping
      // to the owner), and a warm resume pays zero write-back.
      for (const mem::FrameId f : pages_.InUseFramesOf(asid)) {
        const FrameState state = pages_.frame(f);
        if (!state.dirty || DeferredMarked(f)) continue;
        const MappedObject* object = space_->objects().Find(state.object);
        VCOP_CHECK_MSG(object != nullptr, "resident page of unknown object");
        // kIn pages are never written back anywhere; no ledger mark.
        if (object->direction == Direction::kIn) continue;
        MarkDeferred(f);
        ++service_stats_.pages_writeback_deferred;
      }
      ++service_stats_.lazy_context_saves;
    } else {
      if (config_.coalesce_writeback) {
        const u32 cleaned =
            CoalescedWriteback(pages_.InUseFramesOf(asid), dp_cost);
        service_stats_.pages_written_back_on_save += cleaned;
        if (space_->aborted) {
          acct().t_dp += dp_cost;
          acct().t_imu += imu_cost;
          return dp_cost + imu_cost;
        }
      }
      for (const mem::FrameId f : pages_.InUseFramesOf(asid)) {
        const FrameState state = pages_.frame(f);
        if (!state.dirty) continue;
        const MappedObject* object = space_->objects().Find(state.object);
        VCOP_CHECK_MSG(object != nullptr,
                       "resident page of unknown object");
        // kIn pages never reach user space; if a foreign eviction drops
        // one later it is counted there, not here.
        if (object->direction == Direction::kIn) continue;
        const u32 len = PageLength(*object, state.vpage);
        const mem::TransferResult r = StorePageRetried(
            state.asid, geometry_.FrameBase(f),
            PageUserAddr(*object, state.vpage), len);
        dp_cost += r.time;
        if (r.bus_error) {
          if (!space_->aborted) Abort(last_transfer_failure_);
          acct().t_dp += dp_cost;
          acct().t_imu += imu_cost;
          return dp_cost + imu_cost;
        }
        ++acct().writebacks;
        acct().bytes_written_back += len;
        space_->written_back.insert({state.object, state.vpage});
        ++service_stats_.pages_written_back_on_save;
        pages_.ClearDirty(f);
        if (const std::optional<u32> entry = tlb.FindByFrame(f)) {
          tlb.ClearDirty(*entry);
        }
        if (hw::Tlb* l2 = L2(); l2 != nullptr) {
          if (const std::optional<u32> e2 = l2->FindByFrame(f)) {
            l2->ClearDirty(*e2);
          }
        }
      }
    }
    ++service_stats_.tlb_flushes_avoided;
  } else {
    // Untagged baseline: the TLB cannot distinguish tenants, so the
    // whole working set leaves the fabric and the TLB is flushed.
    if (config_.coalesce_writeback) {
      // Multi-page eviction: one burst writes every dirty page back, so
      // the per-frame evictions below are all clean (and free).
      CoalescedWriteback(pages_.InUseFramesOf(asid), dp_cost);
      if (space_->aborted) {
        acct().t_dp += dp_cost;
        acct().t_imu += imu_cost;
        return dp_cost + imu_cost;
      }
    }
    for (const mem::FrameId f : pages_.InUseFramesOf(asid)) {
      EvictFrame(f, dp_cost, imu_cost);
    }
    tlb.InvalidateAll();
    if (hw::Tlb* l2 = L2(); l2 != nullptr) l2->InvalidateAll();
    ++service_stats_.full_tlb_flushes;
  }

  // The tenant's DMA window closes with its slice: shoot its IO-TLB
  // entries down so a later tenant cannot translate through them.
  if (config_.iommu) iommu_.InvalidateAsid(asid);

  ++service_stats_.context_saves;
  acct().t_dp += dp_cost;
  acct().t_imu += imu_cost;
  return dp_cost + imu_cost;
}

Picoseconds Vim::RestoreContext() {
  VCOP_CHECK_MSG(imu_ != nullptr, "context restore with no IMU bound");
  VCOP_CHECK_MSG(space_ != nullptr,
                 "context restore with no space attached");
  const hw::Asid asid = space_->asid();
  hw::Tlb& tlb = imu_->tlb();
  Picoseconds dp_cost = 0;
  Picoseconds imu_cost = costs_.Cycles(costs_.context_restore_cycles);

  if (tlb_tagging_) {
    for (const TlbSnapshotEntry& snap : space_->tlb_snapshot) {
      if (tlb.Probe(snap.object, snap.vpage, asid).has_value()) {
        continue;  // Survived the switched-out window in place.
      }
      if (pages_.FindResident(snap.object, snap.vpage, asid) !=
          snap.frame) {
        continue;  // Frame was evicted meanwhile; a fault will reload it.
      }
      InstallTlbEntry(snap.object, snap.vpage, snap.frame);
      imu_cost += costs_.Cycles(costs_.tlb_update_cycles);
      ++service_stats_.tlb_entries_restored;
    }
  }
  space_->tlb_snapshot.clear();

  // Re-materialise the parameter page released at save time.
  if (space_->params_live && !space_->param_frame.has_value()) {
    std::optional<mem::FrameId> frame = AllocFrame();
    if (!frame.has_value()) {
      const std::vector<bool> evictable = pages_.EvictableMask();
      bool any = false;
      for (const bool e : evictable) any = any || e;
      VCOP_CHECK_MSG(any, "no frame available to restore the parameter "
                          "page (all pinned)");
      const mem::FrameId victim = policy_->PickVictim(evictable);
      EvictFrame(victim, dp_cost, imu_cost);
      frame = victim;
    }
    for (usize i = 0; i < space_->saved_params.size(); ++i) {
      dp_ram_.WriteWord(mem::DualPortRam::Port::kProcessor,
                        geometry_.FrameBase(*frame) + static_cast<u32>(4 * i),
                        4, space_->saved_params[i]);
    }
    pages_.Install(*frame, hw::kParamObject, 0, /*pinned=*/true, asid);
    policy_->OnInstalled(*frame);
    policy_->OnInstalledAt(*frame, hw::kParamObject, 0);
    InstallTlbEntry(hw::kParamObject, 0, *frame);
    space_->param_frame = frame;
    dp_cost += transfers_.PriceTransfer(
        static_cast<u32>(space_->saved_params.size() * 4));
    imu_cost += costs_.Cycles(costs_.tlb_update_cycles);
    ++service_stats_.param_page_restores;
  }

  ++service_stats_.context_restores;
  acct().t_dp += dp_cost;
  acct().t_imu += imu_cost;
  ArmWatchdog();
  return dp_cost + imu_cost;
}

Picoseconds Vim::FlushAsid(hw::Asid asid, bool write_back) {
  VCOP_CHECK_MSG(imu_ != nullptr, "flush with no IMU bound");
  hw::Tlb& tlb = imu_->tlb();
  Picoseconds cost = 0;

  // Fold live dirty bits for this space before dropping translations.
  for (u32 i = 0; i < tlb.num_entries(); ++i) {
    const hw::TlbEntry e = tlb.entry(i);
    if (e.valid && e.asid == asid && e.dirty &&
        pages_.frame(e.frame).in_use) {
      pages_.MarkDirty(e.frame);
    }
  }
  tlb.InvalidateAsid(asid);
  if (hw::Tlb* l2 = L2(); l2 != nullptr) {
    for (u32 i = 0; i < l2->num_entries(); ++i) {
      const hw::TlbEntry e = l2->entry(i);
      if (e.valid && e.asid == asid && e.dirty &&
          pages_.frame(e.frame).in_use) {
        pages_.MarkDirty(e.frame);
      }
    }
    l2->InvalidateAsid(asid);
  }
  // The flush means "this ASID's interface state is gone": any cached
  // eviction record for it must die with the frames.
  InvalidateVictims(asid);

  AddressSpace* owner = ResolveSpace(asid);
  if (write_back && config_.coalesce_writeback) {
    CoalescedWriteback(pages_.InUseFramesOf(asid), cost);
    // A burst failure leaves the failed pages dirty; the best-effort
    // per-page sweep below retries them individually.
  }
  for (const mem::FrameId f : pages_.InUseFramesOf(asid)) {
    const FrameState state = pages_.frame(f);
    if (write_back && state.dirty && state.object != hw::kParamObject &&
        owner != nullptr) {
      const MappedObject* object = owner->objects().Find(state.object);
      if (object != nullptr && object->direction != Direction::kIn) {
        const u32 len = PageLength(*object, state.vpage);
        const mem::TransferResult r = StorePageRetried(
            state.asid, geometry_.FrameBase(f),
            PageUserAddr(*object, state.vpage), len);
        cost += r.time;
        if (r.bus_error) {
          // Teardown is best-effort: the page's data is lost, which
          // fault_abort_ (set by the failed retry chain) reports to
          // vcopd so the job is failed rather than silently truncated.
          continue;
        }
        ++owner->accounting.writebacks;
        owner->accounting.bytes_written_back += len;
        owner->written_back.insert({state.object, state.vpage});
        SettleDeferredFlush(f);
      }
    }
    SettleSpeculativeRelease(pages_.frame(f));
    if (state.pinned) pages_.Unpin(f);
    pages_.Release(f);
    policy_->OnFreed(f);
  }
  if (owner != nullptr) owner->param_frame.reset();
  // IO-TLB shootdown rides the same flush: the ASID's interface state
  // is gone, and with it every cached DMA translation. After the
  // write-back sweep — its own stores were the last legitimate users.
  if (config_.iommu) iommu_.InvalidateAsid(asid);
  return cost;
}

void Vim::AbandonInFlight() {
  for (const InFlight& unit : in_flight_) {
    if (unit.pinned) {
      iommu_.UnpinRange(user_memory_, unit.user_addr, unit.user_len);
    }
  }
  in_flight_.clear();
}

void Vim::Abort(Status status) {
  VCOP_CHECK_MSG(!status.ok(), "abort with OK status");
  space_->aborted = true;
  ++epoch_;
  ++watchdog_epoch_;
  fault_service_pending_ = false;
  AbandonInFlight();
  cpu_busy_until_ = 0;
  VCOP_LOG(kWarning, "VIM aborting run: " + status.ToString());
  imu_->HardStop();
  if (on_abort_) on_abort_(std::move(status));
}

// ----- speculation and batching (DESIGN.md §10) -----

std::vector<PrefetchSuggestion> Vim::ClampedSuggestions(hw::ObjectId oid,
                                                        mem::VirtPage vpage,
                                                        u32 num_pages) {
  std::vector<PrefetchSuggestion> out =
      prefetcher_->Suggest(oid, vpage, num_pages);
  usize kept = 0;
  for (const PrefetchSuggestion& s : out) {
    if (s.object != oid || s.vpage >= num_pages || s.vpage == vpage) {
      ++acct().prefetch_suggestions_dropped;
      ++service_stats_.prefetch_suggestions_dropped;
      continue;
    }
    out[kept++] = s;
  }
  out.resize(kept);
  return out;
}

void Vim::NoteSpeculativeTouch(mem::FrameId frame) {
  const FrameState& state = pages_.frame(frame);
  if (!state.in_use || !state.speculative) return;
  if (AddressSpace* owner = ResolveSpace(state.asid)) {
    ++owner->accounting.prefetch_useful;
  }
  ++service_stats_.prefetch_useful;
  pages_.ClearSpeculative(frame);
}

void Vim::SettleSpeculativeRelease(const FrameState& state) {
  if (!state.speculative) return;
  if (AddressSpace* owner = ResolveSpace(state.asid)) {
    ++owner->accounting.prefetch_wasted;
  }
  ++service_stats_.prefetch_wasted;
}

void Vim::RecordVictim(const FrameState& state, mem::FrameId frame) {
  if (victim_tlb_.empty()) return;
  if (state.object == hw::kParamObject) return;
  // Superpage runs are not recorded: a tail frame's reuse would not
  // bump the head's generation, so a hit could redeem a clobbered run.
  if (state.span > 1) return;
  VictimEntry& e = victim_tlb_[victim_cursor_++ % victim_tlb_.size()];
  e.valid = true;
  e.asid = state.asid;
  e.object = state.object;
  e.vpage = state.vpage;
  e.frame = frame;
  e.generation = pages_.generation(frame);
}

std::optional<mem::FrameId> Vim::VictimLookup(hw::ObjectId object,
                                              mem::VirtPage vpage,
                                              hw::Asid asid) {
  for (VictimEntry& e : victim_tlb_) {
    if (!e.valid || e.asid != asid || e.object != object ||
        e.vpage != vpage) {
      continue;
    }
    // Stale if the frame was reused since the eviction (any reinstall
    // bumps the frame's generation) or is occupied right now. A later
    // record for the same page may still be good, so keep scanning.
    if (pages_.frame(e.frame).in_use ||
        pages_.generation(e.frame) != e.generation) {
      e.valid = false;
      continue;
    }
    e.valid = false;  // consumed
    return e.frame;
  }
  return std::nullopt;
}

void Vim::InvalidateVictims(hw::Asid asid) {
  for (VictimEntry& e : victim_tlb_) {
    if (e.asid == asid) e.valid = false;
  }
}

u32 Vim::victim_tlb_live_entries() const {
  u32 live = 0;
  for (const VictimEntry& e : victim_tlb_) live += e.valid ? 1 : 0;
  return live;
}

std::optional<mem::FrameId> Vim::AllocFrame() const {
  const std::optional<mem::FrameId> first = pages_.FindFree();
  if (!first.has_value() || victim_tlb_.empty()) return first;
  // A free frame is "protected" while a live victim record could still
  // be redeemed from it; handing it out would make every record stale
  // the moment the next tenant allocates (FindFree always picks the
  // lowest frame, so all traffic would funnel through exactly the
  // frames just vacated). Prefer unprotected free frames; when every
  // free frame is protected, fall back to the lowest (allocation must
  // never fail on account of speculation).
  std::vector<bool> protected_frames(geometry_.num_frames(), false);
  for (const VictimEntry& e : victim_tlb_) {
    if (!e.valid || e.frame >= protected_frames.size()) continue;
    if (pages_.frame(e.frame).in_use ||
        pages_.generation(e.frame) != e.generation) {
      continue;  // already stale: no reason to protect
    }
    protected_frames[e.frame] = true;
  }
  for (mem::FrameId f = *first; f < geometry_.num_frames(); ++f) {
    if (!pages_.frame(f).in_use && !protected_frames[f]) return f;
  }
  return first;
}

bool Vim::DeferredMarked(mem::FrameId frame) const {
  if (frame >= deferred_marks_.size()) return false;
  const DeferredMark& mark = deferred_marks_[frame];
  if (mark.asid == 0) return false;
  const FrameState& state = pages_.frame(frame);
  return state.in_use && state.dirty && state.asid == mark.asid &&
         pages_.generation(frame) == mark.generation;
}

void Vim::MarkDeferred(mem::FrameId frame) {
  if (deferred_marks_.size() < geometry_.num_frames()) {
    deferred_marks_.resize(geometry_.num_frames());
  }
  deferred_marks_[frame] =
      DeferredMark{pages_.frame(frame).asid, pages_.generation(frame)};
}

void Vim::SettleDeferredFlush(mem::FrameId frame) {
  if (!DeferredMarked(frame)) return;
  deferred_marks_[frame].asid = 0;
  ++service_stats_.deferred_writebacks;
}

u32 Vim::CoalescedWriteback(const std::vector<mem::FrameId>& frames,
                            Picoseconds& dp_cost) {
  // Gather the dirty, write-backable pages. InUseFrames enumerates in
  // frame order, so adjacent dirty pages land in one ascending burst.
  std::vector<mem::FrameId> batch;
  std::vector<mem::Iommu::BurstSegment> segments;
  for (const mem::FrameId f : frames) {
    const FrameState state = pages_.frame(f);
    if (!state.in_use || state.object == hw::kParamObject) continue;
    if (!FrameDirty(f)) continue;
    AddressSpace* owner = ResolveSpace(state.asid);
    if (owner == nullptr) continue;
    const MappedObject* object = owner->objects().Find(state.object);
    if (object == nullptr || object->direction == Direction::kIn) {
      continue;  // dropped pages stay with the per-page sweep's counters
    }
    const u32 len = PageLength(*object, state.vpage);
    batch.push_back(f);
    segments.push_back(mem::Iommu::BurstSegment{
        state.asid,
        mem::StoreSegment{geometry_.FrameBase(f),
                          PageUserAddr(*object, state.vpage), len}});
  }
  if (segments.size() < 2) return 0;  // nothing to amortise

  const mem::BurstResult r = StoreBurstRetried(segments);
  dp_cost += r.time;
  // Settle the pages that actually landed, even on a failed burst: they
  // are clean now, and the per-page sweep must not write them twice.
  for (u32 i = 0; i < r.completed_segments; ++i) {
    const mem::FrameId f = batch[i];
    const FrameState state = pages_.frame(f);
    AddressSpace* owner = ResolveSpace(state.asid);
    VCOP_CHECK_MSG(owner != nullptr, "burst page lost its owner");
    ++owner->accounting.writebacks;
    owner->accounting.bytes_written_back += segments[i].seg.len;
    owner->written_back.insert({state.object, state.vpage});
    SettleDeferredFlush(f);
    pages_.ClearDirty(f);
    if (const std::optional<u32> entry = imu_->tlb().FindByFrame(f)) {
      imu_->tlb().ClearDirty(*entry);
    }
    if (hw::Tlb* l2 = L2(); l2 != nullptr) {
      if (const std::optional<u32> e2 = l2->FindByFrame(f)) {
        l2->ClearDirty(*e2);
      }
    }
  }
  ++service_stats_.coalesced_bursts;
  service_stats_.coalesced_pages += r.completed_segments;
  acct().coalesced_bursts += 1;
  acct().coalesced_pages += r.completed_segments;
  return r.completed_segments;
}

mem::BurstResult Vim::StoreBurstRetried(
    std::span<const mem::Iommu::BurstSegment> segments) {
  // Off the zero-copy path the engine takes plain segments; strip the
  // ASID tags once up front.
  std::vector<mem::StoreSegment> plain;
  if (!config_.iommu) {
    plain.reserve(segments.size());
    for (const mem::Iommu::BurstSegment& bs : segments) {
      plain.push_back(bs.seg);
    }
  }
  mem::BurstResult total;
  u32 attempt = 0;
  while (true) {
    const mem::BurstResult r =
        config_.iommu
            ? iommu_.StoreBurstFromDp(
                  dp_ram_, user_memory_,
                  segments.subspan(total.completed_segments))
            : transfers_.StoreBurst(
                  dp_ram_, user_memory_,
                  std::span<const mem::StoreSegment>(plain).subspan(
                      total.completed_segments));
    total.time += r.time;
    total.bytes += r.bytes;
    total.retried_beats += r.retried_beats;
    const bool progressed = r.completed_segments > 0;
    total.completed_segments += r.completed_segments;
    if (!r.bus_error && !r.iommu_fault) return total;
    if (r.iommu_fault) {
      // The walk for the first unfinished segment failed: service it
      // like a bus error (decode, then re-enter the bounded retry).
      ++acct().iommu_faults;
      total.time += costs_.Cycles(costs_.fault_decode_cycles);
    }
    // Retry the transaction from the first segment that did not land,
    // with the same bounded backoff as the per-page transfers. Progress
    // resets the attempt counter: only a segment that keeps failing in
    // place exhausts the limit.
    if (progressed) attempt = 0;
    ++service_stats_.transfer_retries;
    if (++attempt >= config_.transfer_retry_limit) break;
    total.time += costs_.Cycles(
        static_cast<u64>(costs_.transfer_retry_backoff_cycles)
        << (attempt - 1));
    if (!ChargeFaultRecovery("AHB burst store retry")) {
      total.bus_error = true;
      return total;
    }
  }
  ++service_stats_.transfer_retry_failures;
  fault_abort_ = true;
  last_transfer_failure_ = UnavailableError(StrFormat(
      "AHB burst store stalled at segment %u of %zu after %u attempts",
      total.completed_segments, segments.size(),
      config_.transfer_retry_limit));
  total.bus_error = true;
  return total;
}

// ----- fault injection and recovery -----

void Vim::InstallFaultPlan(FaultPlan* plan) {
  fault_plan_ = plan;
  transfers_.set_fault_plan(plan);
  iommu_.set_fault_plan(plan);
}

void Vim::OnTlbParityDrop(const hw::TlbEntry& dropped) {
  ++service_stats_.tlb_parity_drops;
  // Keep the dropped entry's dirty information: the page is still
  // resident, and the refill fault that follows must not forget that
  // the coprocessor wrote to it.
  if (dropped.dirty && pages_.frame(dropped.frame).in_use) {
    pages_.MarkDirty(dropped.frame);
  }
}

mem::TransferResult Vim::LoadPageRetried(hw::Asid asid, mem::UserAddr src,
                                         u32 dst, u32 len) {
  mem::TransferResult total;
  for (u32 attempt = 0;; ++attempt) {
    const mem::TransferResult r =
        config_.iommu
            ? iommu_.LoadToDp(asid, user_memory_, src, dp_ram_, dst, len)
            : transfers_.LoadPage(user_memory_, src, dp_ram_, dst, len);
    total.time += r.time;
    total.retried_beats += r.retried_beats;
    if (!r.bus_error && !r.iommu_fault) {
      total.bytes = r.bytes;
      return total;
    }
    if (r.iommu_fault) {
      // Translation fault on the DMA: decode it and re-enter the same
      // bounded retry loop a bus error would take. A transient walk
      // failure (injected fault) succeeds on a later attempt; a
      // genuinely unmapped page exhausts the limit and fails the run.
      ++acct().iommu_faults;
      total.time += costs_.Cycles(costs_.fault_decode_cycles);
    }
    ++service_stats_.transfer_retries;
    if (attempt + 1 >= config_.transfer_retry_limit) break;
    total.time += costs_.Cycles(
        static_cast<u64>(costs_.transfer_retry_backoff_cycles) << attempt);
    if (!ChargeFaultRecovery("AHB load retry")) {
      total.bus_error = true;
      return total;
    }
  }
  ++service_stats_.transfer_retry_failures;
  fault_abort_ = true;
  last_transfer_failure_ = UnavailableError(StrFormat(
      "AHB load of %u bytes failed after %u attempts", len,
      config_.transfer_retry_limit));
  total.bus_error = true;
  return total;
}

mem::TransferResult Vim::StorePageRetried(hw::Asid asid, u32 src,
                                          mem::UserAddr dst, u32 len) {
  mem::TransferResult total;
  for (u32 attempt = 0;; ++attempt) {
    const mem::TransferResult r =
        config_.iommu
            ? iommu_.StoreFromDp(asid, dp_ram_, src, user_memory_, dst, len)
            : transfers_.StorePage(dp_ram_, src, user_memory_, dst, len);
    total.time += r.time;
    total.retried_beats += r.retried_beats;
    if (!r.bus_error && !r.iommu_fault) {
      total.bytes = r.bytes;
      return total;
    }
    if (r.iommu_fault) {
      ++acct().iommu_faults;
      total.time += costs_.Cycles(costs_.fault_decode_cycles);
    }
    ++service_stats_.transfer_retries;
    if (attempt + 1 >= config_.transfer_retry_limit) break;
    total.time += costs_.Cycles(
        static_cast<u64>(costs_.transfer_retry_backoff_cycles) << attempt);
    if (!ChargeFaultRecovery("AHB store retry")) {
      total.bus_error = true;
      return total;
    }
  }
  ++service_stats_.transfer_retry_failures;
  fault_abort_ = true;
  last_transfer_failure_ = UnavailableError(StrFormat(
      "AHB store of %u bytes failed after %u attempts", len,
      config_.transfer_retry_limit));
  total.bus_error = true;
  return total;
}

bool Vim::ChargeFaultRecovery(const char* what) {
  if (++acct().fault_recoveries <= config_.fault_budget) return true;
  ++service_stats_.fault_budget_aborts;
  fault_abort_ = true;
  last_transfer_failure_ = ResourceExhaustedError(StrFormat(
      "per-request fault budget (%u recoveries) exhausted at %s",
      config_.fault_budget, what));
  if (!space_->aborted) Abort(last_transfer_failure_);
  return false;
}

void Vim::ArmWatchdog() {
  if (fault_plan_ == nullptr || fault_plan_->empty()) return;
  if (imu_ == nullptr) return;
  wd_stuck_ticks_ = 0;
  wd_last_progress_ = ~u64{0};  // first tick always snapshots fresh
  const u64 epoch = ++watchdog_epoch_;
  sim_.ScheduleAfter(config_.watchdog_timeout,
                     [this, epoch] { WatchdogTick(epoch); });
}

void Vim::WatchdogTick(u64 epoch) {
  if (epoch != watchdog_epoch_) return;  // run ended / preempted / re-armed
  if (space_ == nullptr || space_->aborted || imu_ == nullptr) return;
  ++service_stats_.watchdog_wakeups;

  // A fault is latched in SR but its service was never scheduled: the
  // page-fault interrupt was lost. Re-entering the handler from the
  // poll recovers it (the handler itself is edge-agnostic).
  if (imu_->fault_pending() && !fault_service_pending_) {
    ++service_stats_.watchdog_recoveries;
    if (!ChargeFaultRecovery("watchdog fault re-poll")) return;
    OnPageFault();
    if (space_->aborted) return;
    sim_.ScheduleAfter(config_.watchdog_timeout,
                       [this, epoch] { WatchdogTick(epoch); });
    return;
  }

  // SR.end set with nothing scheduled: the end-of-operation interrupt
  // was lost; run the sweep now (it acknowledges and completes).
  if ((imu_->ReadRegister(hw::ImuRegister::kSR) & hw::kSrEndPending) != 0) {
    ++service_stats_.watchdog_recoveries;
    if (!ChargeFaultRecovery("watchdog end-of-operation re-poll")) return;
    OnEndOfOperation();
    return;
  }

  // Hang detection: the interface shows no pending work, yet neither
  // the access counters nor the core's cycle counter moved since the
  // last tick. Two consecutive silent periods = wedged for good.
  const u64 progress = imu_->stats().accesses + imu_->stats().faults +
                       (progress_probe_ ? progress_probe_() : 0);
  if ((imu_->busy() || imu_->hung()) && progress == wd_last_progress_) {
    if (++wd_stuck_ticks_ >= 2) {
      ++service_stats_.watchdog_hang_aborts;
      fault_abort_ = true;
      Abort(UnavailableError(StrFormat(
          "watchdog: coprocessor made no progress for %u periods "
          "(hung interface)",
          wd_stuck_ticks_)));
      return;
    }
  } else {
    wd_stuck_ticks_ = 0;
    wd_last_progress_ = progress;
  }
  sim_.ScheduleAfter(config_.watchdog_timeout,
                     [this, epoch] { WatchdogTick(epoch); });
}

}  // namespace vcop::os
