#include "os/service.h"

#include <algorithm>

#include "base/fault.h"
#include "base/table.h"

namespace vcop::os {

// ----- TokenBucket -----

TokenBucket::TokenBucket(u64 rate, u32 burst, Picoseconds now)
    : rate_(rate),
      capacity_(static_cast<unsigned __int128>(std::max<u32>(burst, 1)) *
                kPicosecondsPerSecond),
      budget_(capacity_),  // a fresh bucket is full: bursts are free
      last_(now) {}

void TokenBucket::Accrue(Picoseconds now) {
  if (now <= last_) return;
  budget_ += static_cast<unsigned __int128>(now - last_) * rate_;
  if (budget_ > capacity_) budget_ = capacity_;
  last_ = now;
}

bool TokenBucket::TryTake(Picoseconds now) {
  if (rate_ == 0) return true;
  Accrue(now);
  if (budget_ < kPicosecondsPerSecond) return false;
  budget_ -= kPicosecondsPerSecond;
  return true;
}

void TokenBucket::Refund() {
  if (rate_ == 0) return;
  budget_ += kPicosecondsPerSecond;
  if (budget_ > capacity_) budget_ = capacity_;
}

Picoseconds TokenBucket::NextTokenAt(Picoseconds now) {
  if (rate_ == 0) return now;
  Accrue(now);
  if (budget_ >= kPicosecondsPerSecond) return now;
  const unsigned __int128 deficit = kPicosecondsPerSecond - budget_;
  const u64 wait = static_cast<u64>(
      (deficit + rate_ - 1) / rate_);  // ceil: never wake a tick early
  return now + wait;
}

// ----- VcopService -----

VcopServiceConfig VcopServiceConfig::FromKernel(const KernelConfig& config) {
  VcopServiceConfig out;
  out.ring_entries = config.service.ring_entries;
  out.admit_rate = config.service.admit_rate;
  out.admit_burst = config.service.admit_burst;
  return out;
}

VcopService::VcopService(Vcopd& daemon,
                         std::optional<VcopServiceConfig> config)
    : daemon_(daemon),
      config_(config.has_value()
                  ? *config
                  : VcopServiceConfig::FromKernel(daemon.kernel().config())) {}

u32 VcopService::RegisterDesign(const hw::Bitstream& bitstream) {
  for (usize i = 0; i < designs_.size(); ++i) {
    if (designs_[i].name == bitstream.name) return static_cast<u32>(i);
  }
  designs_.push_back(bitstream);
  return static_cast<u32>(designs_.size() - 1);
}

Status VcopService::AttachTenant(TenantId tenant,
                                 std::optional<u64> admit_rate,
                                 std::optional<u32> admit_burst) {
  if (FindPort(tenant) != nullptr) {
    return FailedPreconditionError(
        StrFormat("tenant %u is already attached", tenant));
  }
  const Picoseconds now = daemon_.kernel().simulator().now();
  auto port = std::make_unique<Port>(
      tenant, config_.ring_entries,
      admit_rate.value_or(config_.admit_rate),
      admit_burst.value_or(config_.admit_burst), now);
  port->cq.SetSuppressed(config_.start_suppressed);
  ports_.push_back(std::move(port));
  return Status::Ok();
}

VcopService::Port* VcopService::FindPort(TenantId tenant) {
  for (const std::unique_ptr<Port>& port : ports_) {
    if (port->tenant == tenant) return port.get();
  }
  return nullptr;
}

const VcopService::Port* VcopService::FindPort(TenantId tenant) const {
  for (const std::unique_ptr<Port>& port : ports_) {
    if (port->tenant == tenant) return port.get();
  }
  return nullptr;
}

Status VcopService::Publish(TenantId tenant,
                            const RingDescriptor& descriptor) {
  Port* port = FindPort(tenant);
  if (port == nullptr) {
    return NotFoundError(StrFormat("tenant %u is not attached", tenant));
  }
  VCOP_RETURN_IF_ERROR(port->sq.Publish(descriptor));
  // Under a fault plan a later kick may be lost — make sure the
  // watchdog is running before the descriptor can strand.
  ArmRepoll();
  return Status::Ok();
}

Status VcopService::Kick(TenantId tenant) {
  Port* port = FindPort(tenant);
  if (port == nullptr) {
    return NotFoundError(StrFormat("tenant %u is not attached", tenant));
  }
  ++stats_.doorbell_kicks;
  if (daemon_.TenantQuarantined(tenant)) {
    ++stats_.doorbells_ignored;
    return Status::Ok();
  }
  FaultPlan* plan = daemon_.kernel().fault_plan();
  if (plan != nullptr && plan->ShouldInject(FaultSite::kDoorbellLost)) {
    // The posted doorbell write vanished. The descriptors are safe in
    // shared memory; the re-poll watchdog (armed at Publish) rescues
    // them one period later.
    ++stats_.doorbells_lost;
    return Status::Ok();
  }
  if (port->drain_scheduled) {
    ++stats_.doorbells_coalesced;
    return Status::Ok();
  }
  ScheduleDrain(*port, config_.doorbell_latency);
  return Status::Ok();
}

void VcopService::ScheduleDrain(Port& port, Picoseconds delay) {
  port.drain_scheduled = true;
  Port* pp = &port;
  daemon_.kernel().simulator().ScheduleAfter(delay,
                                             [this, pp] { DrainPort(*pp); });
}

void VcopService::DrainPort(Port& port) {
  port.drain_scheduled = false;
  sim::Simulator& sim = daemon_.kernel().simulator();
  FaultPlan* plan = daemon_.kernel().fault_plan();
  u64 batch = 0;
  while (!port.sq.empty()) {
    const Picoseconds now = sim.now();
    if (!port.bucket.TryTake(now)) {
      // Bucket empty: pause the drain until the next token accrues.
      // Kicks arriving meanwhile coalesce into the scheduled retry.
      ++stats_.admission_deferrals;
      const Picoseconds at = port.bucket.NextTokenAt(now);
      ScheduleDrain(port, at > now ? at - now : 0);
      break;
    }
    if (plan != nullptr &&
        plan->ShouldInject(FaultSite::kDescriptorCorrupt)) {
      // Damage the descriptor where it sits in shared memory; the seal
      // goes stale and the checksum below rejects it.
      port.sq.Head().params[0] ^= 0xdeadbeefu;
    }
    RingDescriptor& head = port.sq.Head();
    if (!head.Intact() || head.design >= designs_.size() ||
        head.nparams > kRingMaxParams ||
        head.nrefs > kRingMaxObjectRefs) {
      const RingDescriptor bad = port.sq.Consume();
      ++stats_.descriptors_rejected;
      CompletionDescriptor completion;
      completion.cookie = bad.cookie;
      completion.code = static_cast<u32>(ErrorCode::kInvalidArgument);
      completion.submitted_at = now;
      completion.started_at = now;
      completion.finished_at = now;
      PushCompletion(port, completion);
      continue;
    }
    // Object refs carry (object id << 32 | user VA): the tenant
    // re-points its mapped objects at per-submission buffers without a
    // map/unmap round trip and without changing the ring ABI — the
    // refs were 64-bit from day one for exactly this (ROADMAP item 1).
    if (head.nrefs > 0) {
      Status repoint = Status::Ok();
      for (u32 i = 0; i < head.nrefs && repoint.ok(); ++i) {
        const hw::ObjectId oid =
            static_cast<hw::ObjectId>(head.object_refs[i] >> 32);
        const mem::UserAddr va =
            static_cast<mem::UserAddr>(head.object_refs[i] & 0xffffffffu);
        repoint = daemon_.RepointObject(port.tenant, oid, va);
      }
      if (!repoint.ok()) {
        const RingDescriptor bad = port.sq.Consume();
        ++stats_.descriptors_rejected;
        CompletionDescriptor completion;
        completion.cookie = bad.cookie;
        completion.code = static_cast<u32>(repoint.code());
        completion.submitted_at = now;
        completion.started_at = now;
        completion.finished_at = now;
        PushCompletion(port, completion);
        continue;
      }
    }
    Port* pp = &port;
    const u64 cookie = head.cookie;
    const Result<Ticket> ticket = daemon_.Submit(
        port.tenant, designs_[head.design],
        std::span<const u32>(head.params.data(), head.nparams),
        [this, pp, cookie](const JobResult& result) {
          OnJobComplete(*pp, cookie, result);
        });
    if (ticket.ok()) {
      port.sq.Consume();
      ++batch;
      continue;
    }
    if (ticket.status().code() == ErrorCode::kResourceExhausted) {
      // The daemon's tenant queue is the next backpressure stage: the
      // descriptor stays in the ring and is re-drained when one of this
      // tenant's jobs completes (OnJobComplete) or the next kick lands.
      ++stats_.daemon_backpressure;
      port.bucket.Refund();  // the job was not admitted after all
      break;
    }
    // Quarantine, unknown design, oversized parameters, ...: fail the
    // descriptor cleanly and keep draining.
    const RingDescriptor failed = port.sq.Consume();
    ++stats_.descriptors_rejected;
    CompletionDescriptor completion;
    completion.cookie = failed.cookie;
    completion.code = static_cast<u32>(ticket.status().code());
    completion.submitted_at = now;
    completion.started_at = now;
    completion.finished_at = now;
    PushCompletion(port, completion);
  }
  if (batch > 0) {
    ++stats_.drains;
    stats_.drained_jobs += batch;
    stats_.max_batch = std::max(stats_.max_batch, batch);
    daemon_.kernel().timeline().Record(
        StrFormat("ring drain tenant%u x%llu", port.tenant,
                  static_cast<unsigned long long>(batch)),
        "service", sim.now(), 0, /*track=*/3);
  }
}

void VcopService::PushCompletion(Port& port,
                                 const CompletionDescriptor& completion) {
  if (!port.overflow.empty() || !port.cq.Push(completion).ok()) {
    // The tenant stopped reaping; hold the completion in order behind
    // whatever already overflowed and let Reap() drain it back.
    port.overflow.push_back(completion);
    ++stats_.completion_ring_stalls;
    return;
  }
  ++stats_.completions_pushed;
  if (port.cq.suppressed()) {
    ++stats_.completions_suppressed;
  } else {
    ++stats_.completions_notified;
    if (port.notify) port.notify();
  }
}

void VcopService::OnJobComplete(Port& port, u64 cookie,
                                const JobResult& result) {
  CompletionDescriptor completion;
  completion.cookie = cookie;
  completion.code = static_cast<u32>(result.status.code());
  completion.preemptions = result.preemptions;
  completion.submitted_at = result.submitted_at;
  completion.started_at = result.started_at;
  completion.finished_at = result.finished_at;
  PushCompletion(port, completion);
  // Flow control: a completion frees a daemon-queue slot, so anything
  // parked in the submission ring gets another drain.
  if (!port.sq.empty() && !port.drain_scheduled) ScheduleDrain(port, 0);
}

bool VcopService::HasCompletions(TenantId tenant) const {
  const Port* port = FindPort(tenant);
  return port != nullptr && !port->cq.empty();
}

Result<CompletionDescriptor> VcopService::Reap(TenantId tenant) {
  Port* port = FindPort(tenant);
  if (port == nullptr) {
    return NotFoundError(StrFormat("tenant %u is not attached", tenant));
  }
  if (port->cq.empty()) {
    return FailedPreconditionError("no completions pending");
  }
  const CompletionDescriptor completion = port->cq.Reap();
  while (!port->overflow.empty() &&
         port->cq.Push(port->overflow.front()).ok()) {
    port->overflow.pop_front();
    ++stats_.completions_pushed;
  }
  return completion;
}

bool VcopService::SetInterruptSuppression(TenantId tenant,
                                          bool suppressed) {
  Port* port = FindPort(tenant);
  VCOP_CHECK_MSG(port != nullptr, "tenant is not attached");
  return port->cq.SetSuppressed(suppressed);
}

void VcopService::SetCompletionNotifier(TenantId tenant,
                                        std::function<void()> fn) {
  Port* port = FindPort(tenant);
  VCOP_CHECK_MSG(port != nullptr, "tenant is not attached");
  port->notify = std::move(fn);
}

void VcopService::ArmRepoll() {
  if (repoll_armed_) return;
  FaultPlan* plan = daemon_.kernel().fault_plan();
  if (plan == nullptr || plan->empty()) return;
  repoll_armed_ = true;
  daemon_.kernel().simulator().ScheduleAfter(config_.repoll_period,
                                             [this] { RepollTick(); });
}

void VcopService::RepollTick() {
  repoll_armed_ = false;
  ++stats_.repoll_ticks;
  for (const std::unique_ptr<Port>& port : ports_) {
    if (!port->sq.empty() && !port->drain_scheduled &&
        !daemon_.TenantQuarantined(port->tenant)) {
      // Descriptors sat a whole period without a drain: their doorbell
      // was lost. Drain them now.
      ++stats_.doorbells_recovered;
      ScheduleDrain(*port, 0);
    }
  }
  // Re-arm only while something could still need rescuing — an idle
  // service schedules no events, exactly like the VIM watchdog.
  if (AnyTransportWork() || daemon_.HasWork()) ArmRepoll();
}

bool VcopService::AnyTransportWork() const {
  for (const std::unique_ptr<Port>& port : ports_) {
    if (port->drain_scheduled) return true;
    // A quarantined tenant's stranded descriptors will never be
    // drained; counting them would keep the watchdog armed forever.
    if (!port->sq.empty() && !daemon_.TenantQuarantined(port->tenant)) {
      return true;
    }
  }
  return false;
}

Status VcopService::RunUntilQuiescent() {
  sim::Simulator& sim = daemon_.kernel().simulator();
  for (;;) {
    if (daemon_.HasWork()) {
      VCOP_RETURN_IF_ERROR(daemon_.RunOne());
      continue;
    }
    // Daemon idle: advance the timeline until a pending transport event
    // (doorbell drain, admission retry, watchdog tick, scheduled
    // arrival) gives it work, or nothing is left anywhere.
    if (!sim.RunUntil([this] { return daemon_.HasWork(); })) break;
  }
  // Restores the kernel's default VIM binding (no work left, so this
  // grants no further slices).
  return daemon_.RunUntilIdle();
}

const RingStats* VcopService::submission_stats(TenantId tenant) const {
  const Port* port = FindPort(tenant);
  return port == nullptr ? nullptr : &port->sq.stats();
}

const RingStats* VcopService::completion_stats(TenantId tenant) const {
  const Port* port = FindPort(tenant);
  return port == nullptr ? nullptr : &port->cq.stats();
}

ScheduleReport VcopService::BuildScheduleReport() const {
  ScheduleReport report = daemon_.BuildScheduleReport();
  report.doorbell_kicks = stats_.doorbell_kicks;
  report.doorbells_coalesced = stats_.doorbells_coalesced;
  report.admission_deferrals = stats_.admission_deferrals;
  report.completions_suppressed = stats_.completions_suppressed;
  return report;
}

}  // namespace vcop::os
