// Per-tenant address spaces for the vcopd service layer.
//
// The paper models one process owning the coprocessor for the duration
// of a blocking FPGA_EXECUTE. To serve many concurrent clients (§5's
// "managing the reconfigurable fabric across tasks"), each tenant gets
// an AddressSpace: its own Process, its own object table, and — the
// part that makes preemption possible — the VIM execution context that
// used to live inside the Vim itself (accounting, write-back history,
// parameter-page state, a TLB snapshot taken at preemption). The Vim
// operates on exactly one attached AddressSpace at a time; vcopd swaps
// spaces at dispatch boundaries.
//
// Spaces are identified by an ASID, the tag the shared interface TLB
// keys entries on (hw/tlb.h): a tenant's translations survive other
// tenants' slices until capacity evicts them. ASID 0 is reserved for
// the kernel's default single-tenant space, which keeps every legacy
// code path bit-identical.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "hw/tlb.h"
#include "mem/page.h"
#include "os/object_table.h"
#include "os/process.h"
#include "sim/stats.h"

namespace vcop::os {

/// Per-execution accounting, matching the decomposition of Figures 8/9.
/// Lives with the address space so a preempted tenant's partial charges
/// survive the slices of other tenants.
struct VimAccounting {
  /// "software execution time for the dual-port RAM management (time
  /// spent in the OS transferring data from/to user-space memory)"
  Picoseconds t_dp = 0;
  /// "software execution time for the IMU management (time spent in the
  /// OS checking which address has generated the fault and updating the
  /// translation table)"
  Picoseconds t_imu = 0;
  /// Waking the sleeping caller at end of operation — invocation
  /// machinery, reported with the invocation overhead, not as IMU
  /// management.
  Picoseconds t_wakeup = 0;

  u64 faults = 0;           // hard faults: page not resident
  u64 tlb_refills = 0;      // soft faults: resident, TLB entry missing
  u64 evictions = 0;
  u64 writebacks = 0;
  u64 loads = 0;
  u64 prefetched_pages = 0;
  /// Pages written back in place by background cleaning (overlap mode).
  u64 cleaned_pages = 0;
  u64 bytes_loaded = 0;
  u64 bytes_written_back = 0;
  /// CPU time spent on transfers that ran concurrently with coprocessor
  /// execution (overlapped prefetch). NOT part of the serial t_dp sum —
  /// it does not extend the wall time unless a fault has to wait.
  Picoseconds t_dp_overlapped = 0;
  /// Portion of fault-service time spent waiting for an in-flight
  /// overlapped transfer (or for the CPU to finish one). Included in
  /// t_dp.
  Picoseconds t_dp_wait = 0;
  /// Writes observed to pages of objects mapped IN (coprocessor bug
  /// indicator: those dirty pages are dropped, honouring the hint).
  u64 dirty_in_pages_dropped = 0;
  /// Times this execution was preempted at a fault boundary (vcopd).
  u64 preemptions = 0;
  /// Recovery actions (transfer retries, watchdog re-polls) consumed
  /// against this execution's fault budget (VimConfig::fault_budget).
  u64 fault_recoveries = 0;
  /// Zero-copy DMA accesses the IOMMU refused to translate (walk
  /// failed or an injected translation fault); each is serviced
  /// through the same bounded retry path as a bus error.
  u64 iommu_faults = 0;
  /// Speculation outcome: prefetched pages that the coprocessor went on
  /// to touch vs pages released still-unreferenced. useful + wasted
  /// <= prefetched_pages (pages still resident at the end of an
  /// execution are settled by the end-of-operation sweep).
  u64 prefetch_useful = 0;
  u64 prefetch_wasted = 0;
  /// Suggestions a prefetch strategy made that violated its contract
  /// (wrong object, out of range, the faulting page itself) and were
  /// dropped by the Vim's central clamp. Nonzero means a strategy bug.
  u64 prefetch_suggestions_dropped = 0;
  /// Faults answered from the software victim TLB: the evicted frame's
  /// contents were still intact, so the load was skipped.
  u64 victim_tlb_hits = 0;
  u64 victim_tlb_misses = 0;
  /// Scatter-gather write-back batching: bursts issued and pages they
  /// carried (pages/bursts = mean batch size).
  u64 coalesced_bursts = 0;
  u64 coalesced_pages = 0;
  /// Distribution of individual fault-service times in microseconds
  /// (interrupt entry to coprocessor restart).
  sim::Summary fault_service_us;
};

/// A TLB entry as remembered by SaveContext: enough to re-install the
/// translation at resume if the backing frame is still resident.
struct TlbSnapshotEntry {
  hw::ObjectId object = 0;
  mem::VirtPage vpage = 0;
  mem::FrameId frame = 0;
};

class AddressSpace {
 public:
  AddressSpace(u32 pid, hw::Asid asid, std::string name = "")
      : asid_(asid), name_(std::move(name)), process_(pid) {}

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  u32 pid() const { return process_.pid(); }
  hw::Asid asid() const { return asid_; }
  const std::string& name() const { return name_; }
  Process& process() { return process_; }
  const Process& process() const { return process_; }
  ObjectTable& objects() { return objects_; }
  const ObjectTable& objects() const { return objects_; }

  // ----- VIM execution context (driven by the Vim while attached) -----

  VimAccounting accounting{};
  /// Pages of OUT objects that have been written back at least once;
  /// their next fault must reload them (see Vim::EnsureMapped).
  std::set<std::pair<hw::ObjectId, mem::VirtPage>> written_back;
  /// Frame pinned under the parameter page, while established.
  std::optional<mem::FrameId> param_frame;
  /// The scalar parameters of the current execution, kept so a
  /// preempted run can re-materialise its parameter page at resume.
  std::vector<u32> saved_params;
  /// True from PrepareExecution until the coprocessor releases the
  /// parameter page (or the run ends): the page must exist — or be
  /// restored — whenever the job is on the fabric.
  bool params_live = false;
  /// The run was aborted; late interrupts are ignored.
  bool aborted = false;
  /// Own TLB entries at the last SaveContext (restored if still valid).
  std::vector<TlbSnapshotEntry> tlb_snapshot;

 private:
  hw::Asid asid_;
  std::string name_;
  Process process_;
  ObjectTable objects_;
};

/// Allocates ASIDs from the finite tag space of the shared TLB's CAM.
/// ASID 0 is permanently reserved for the kernel's default space. The
/// cursor keeps advancing across Release, so freed tags are reused in
/// wrap-around order — the classic generation problem: after 2^N
/// allocations a tag can be handed out again while TLB entries created
/// under its previous owner are still live, aliasing the new tenant
/// onto stale translations. UnregisterTenant flushes a dying ASID's
/// residue, but nothing forces that invariant on other users of the
/// allocator, so the allocator itself tracks generations: every
/// wrap-around of the cursor past the top of the tag space bumps the
/// generation and fires the rollover hook, which the owner (vcopd)
/// wires to a full TLB invalidation.
class AsidAllocator {
 public:
  /// `capacity` = total tags including the reserved 0; must be >= 2.
  explicit AsidAllocator(u32 capacity);

  Result<hw::Asid> Allocate();
  void Release(hw::Asid asid);
  bool InUse(hw::Asid asid) const;

  u32 capacity() const { return static_cast<u32>(used_.size()); }
  u32 in_use() const { return in_use_; }

  /// Completed passes through the tag space (i.e. times the cursor
  /// wrapped past the top while scanning or advancing).
  u64 generation() const { return generation_; }

  /// Invoked once per generation rollover, before the recycled tag is
  /// returned: the hook must make sure no stale entries tagged with a
  /// previous generation's ASIDs survive (vcopd installs a full flush
  /// of the shared TLB).
  void set_rollover_hook(std::function<void()> hook) {
    rollover_hook_ = std::move(hook);
  }

 private:
  std::vector<bool> used_;
  u32 in_use_ = 0;
  u32 cursor_ = 1;
  u64 generation_ = 0;
  std::function<void()> rollover_hook_;
};

}  // namespace vcop::os
