// Execution timelines: what the OS and the coprocessor were doing,
// when — exportable to the Chrome trace-event format (load the JSON in
// chrome://tracing or Perfetto).
//
// The ExecutionReport aggregates the paper's three time buckets; the
// timeline keeps the individual events (each fault service with its
// cause, every overlapped transfer unit, configuration and execution
// spans), which is what you actually stare at when a run is slower than
// expected.
#pragma once

#include <string>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"

namespace vcop::os {

struct TimelineEvent {
  std::string name;      // e.g. "fault obj0 page3", "clean frame 5"
  std::string category;  // "fault" | "transfer" | "overlap" | "exec" | "config"
  Picoseconds start = 0;
  Picoseconds duration = 0;
  /// Virtual lane: 0 = CPU/OS, 1 = coprocessor, 2 = background CPU,
  /// 3 = service daemon (vcopd dispatches, switches, preemptions).
  u32 track = 0;
};

class TimelineRecorder {
 public:
  void Record(std::string name, std::string category, Picoseconds start,
              Picoseconds duration, u32 track) {
    events_.push_back(TimelineEvent{std::move(name), std::move(category),
                                    start, duration, track});
  }

  const std::vector<TimelineEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Chrome trace-event JSON ("X" complete events, microsecond
  /// timestamps as the format requires).
  std::string ToChromeTrace() const;

 private:
  std::vector<TimelineEvent> events_;
};

}  // namespace vcop::os
