#include "os/address_space.h"

#include "base/table.h"

namespace vcop::os {

AsidAllocator::AsidAllocator(u32 capacity) : used_(capacity, false) {
  VCOP_CHECK_MSG(capacity >= 2, "ASID space needs at least one free tag");
  used_[0] = true;  // kernel default space
  in_use_ = 1;
}

Result<hw::Asid> AsidAllocator::Allocate() {
  for (u32 step = 0; step < used_.size(); ++step) {
    const u32 candidate = (cursor_ + step) % used_.size();
    if (candidate == 0 || used_[candidate]) continue;
    used_[candidate] = true;
    ++in_use_;
    cursor_ = (candidate + 1) % used_.size();
    return static_cast<hw::Asid>(candidate);
  }
  return ResourceExhaustedError(
      StrFormat("all %zu ASIDs in use", used_.size() - 1));
}

void AsidAllocator::Release(hw::Asid asid) {
  VCOP_CHECK_MSG(asid != 0, "ASID 0 is reserved for the kernel");
  VCOP_CHECK_MSG(asid < used_.size() && used_[asid],
                 "releasing an ASID that is not allocated");
  used_[asid] = false;
  --in_use_;
}

bool AsidAllocator::InUse(hw::Asid asid) const {
  return asid < used_.size() && used_[asid];
}

}  // namespace vcop::os
