#include "os/address_space.h"

#include "base/table.h"

namespace vcop::os {

AsidAllocator::AsidAllocator(u32 capacity) : used_(capacity, false) {
  VCOP_CHECK_MSG(capacity >= 2, "ASID space needs at least one free tag");
  used_[0] = true;  // kernel default space
  in_use_ = 1;
}

Result<hw::Asid> AsidAllocator::Allocate() {
  for (u32 step = 0; step < used_.size(); ++step) {
    const u32 candidate =
        (cursor_ + step) % static_cast<u32>(used_.size());
    if (candidate == 0 || used_[candidate]) continue;
    if (cursor_ + step >= used_.size()) {
      // The scan wrapped past the top of the tag space: `candidate` may
      // have been handed out in a previous pass, and TLB entries
      // installed under its previous owner could still be live. Fire
      // the rollover hook so the owner flushes them before the tag is
      // reused under a new identity.
      ++generation_;
      if (rollover_hook_) rollover_hook_();
    }
    used_[candidate] = true;
    ++in_use_;
    // Deliberately not wrapped: cursor_ == size() marks "next scan
    // starts a new pass", so the wrap detection above still sees the
    // crossing. It is re-normalised by the modulo on the next scan.
    cursor_ = candidate + 1;
    return static_cast<hw::Asid>(candidate);
  }
  return ResourceExhaustedError(
      StrFormat("all %zu ASIDs in use", used_.size() - 1));
}

void AsidAllocator::Release(hw::Asid asid) {
  VCOP_CHECK_MSG(asid != 0, "ASID 0 is reserved for the kernel");
  VCOP_CHECK_MSG(asid < used_.size() && used_[asid],
                 "releasing an ASID that is not allocated");
  used_[asid] = false;
  --in_use_;
}

bool AsidAllocator::InUse(hw::Asid asid) const {
  return asid < used_.size() && used_[asid];
}

}  // namespace vcop::os
