// FPGA job scheduling across tasks.
//
// The paper's §5 points at the complementary problem of "managing the
// reconfigurable lattice across tasks" (Walder/Platzner; Dales) —
// "future system[s] may have to implement solutions for both". This
// module implements the OS side of that for the single-PLD platform:
// jobs from multiple processes queue for the exclusive fabric; the
// scheduler serialises them (FPGA_EXECUTE is blocking, so there is no
// intra-device preemption to exploit), reconfiguring the PLD whenever
// consecutive jobs need different designs.
//
// Reconfiguration is expensive — tens of milliseconds on the EPXA1's
// configuration port, comparable to whole executions — so ordering
// matters: batching jobs by bit-stream amortises it. Both orders are
// provided and measured in bench/abl_sharing.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "base/units.h"
#include "hw/fabric.h"
#include "os/kernel.h"

namespace vcop::os {

/// One queued unit of coprocessor work.
struct FpgaJob {
  /// Submitting process (bookkeeping only; the platform model has a
  /// single address space shared by the batch).
  u32 pid = 0;
  /// Name of the design this job needs; must exist in the scheduler's
  /// design library.
  std::string bitstream;
  /// The job body: map objects and execute against the (already
  /// configured) kernel. The object table is cleared before each job.
  std::function<Result<ExecutionReport>(Kernel&)> run;
};

enum class ScheduleOrder : u8 {
  kFifo,            // strict submission order
  kBatchBitstream,  // group same-design jobs to amortise configuration
};

std::string_view ToString(ScheduleOrder order);

struct JobOutcome {
  u32 pid = 0;
  std::string bitstream;
  Status status;
  Picoseconds submitted_at = 0;
  Picoseconds started_at = 0;
  Picoseconds finished_at = 0;
  /// Full configurations this job paid, across every slice (an
  /// FPGA_LOAD under FpgaScheduler; vcopd also counts resumed slices
  /// whose design was evicted meanwhile).
  u32 reconfigurations = 0;
  /// Configuration-cache slot activations (vcopd with config_slots > 1).
  u32 slot_activations = 0;
  Picoseconds config_time = 0;
  /// Times the job was preempted at a fault boundary (always 0 under
  /// FpgaScheduler, which runs jobs to completion; vcopd fills it in).
  u32 preemptions = 0;
  ExecutionReport report;  // valid when status.ok()

  Picoseconds turnaround() const { return finished_at - submitted_at; }
  Picoseconds wait() const { return started_at - submitted_at; }
};

/// Nearest-rank percentile of a sample set (q in [0, 1]); 0 when empty.
Picoseconds Percentile(std::vector<Picoseconds> samples, double q);

/// Per-submitter fairness digest of a schedule, for starvation and
/// tail-latency analysis across competing tenants.
struct TenantFairness {
  u32 pid = 0;
  usize jobs = 0;
  Picoseconds busy = 0;  // sum of started->finished spans
  Picoseconds max_wait = 0;
  Picoseconds max_turnaround = 0;
  Picoseconds p50_turnaround = 0;
  Picoseconds p99_turnaround = 0;
  /// busy / makespan: the fraction of the batch this pid held the PLD.
  double makespan_share = 0.0;
};

struct ScheduleReport {
  std::vector<JobOutcome> outcomes;
  Picoseconds makespan = 0;
  Picoseconds total_config_time = 0;
  u32 reconfigurations = 0;
  // Configuration-cache rollup (vcopd with config_slots > 1; always 0
  // for FpgaScheduler batches and single-slot fleets).
  u32 slot_activations = 0;
  Picoseconds total_activation_time = 0;
  // Fault-recovery rollup across the batch (all 0 on fault-free runs).
  /// Page transfers the VIM re-ran after an injected bus error.
  u64 transfer_retries = 0;
  /// Lost interrupts recovered by the VIM watchdog.
  u64 watchdog_recoveries = 0;
  /// Tenants quarantined after exhausting a fault budget (vcopd only).
  u64 quarantines = 0;
  // Speculation/batching rollup across the batch (DESIGN.md §10).
  u64 prefetch_issued = 0;
  u64 prefetch_useful = 0;
  u64 prefetch_wasted = 0;
  u64 victim_tlb_hits = 0;
  u64 coalesced_bursts = 0;
  u64 coalesced_pages = 0;
  // Ring-transport rollup (VcopService::BuildScheduleReport only;
  // all 0 for direct-call batches).
  u64 doorbell_kicks = 0;
  u64 doorbells_coalesced = 0;
  u64 admission_deferrals = 0;
  u64 completions_suppressed = 0;

  Picoseconds mean_turnaround() const;
  usize failures() const;
  /// Longest time any job waited before starting.
  Picoseconds max_wait() const;
  /// Fairness digest per submitting pid, ordered by pid.
  std::vector<TenantFairness> per_pid() const;
};

class FpgaScheduler {
 public:
  /// `designs`: the bit-stream library jobs may request, by name.
  FpgaScheduler(Kernel& kernel,
                std::map<std::string, hw::Bitstream> designs);

  /// Runs every job to completion in the chosen order. Jobs whose
  /// design is unknown or whose body fails are reported failed; the
  /// batch continues.
  ScheduleReport RunAll(std::vector<FpgaJob> jobs, ScheduleOrder order);

 private:
  Kernel& kernel_;
  std::map<std::string, hw::Bitstream> designs_;
};

}  // namespace vcop::os
